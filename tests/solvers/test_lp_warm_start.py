"""Revised simplex: warm starts, adversarial LPs, dual cross-validation.

The warm-start contract (documented in README "Solver internals"):

* re-entering an LP from its *own* optimal basis reproduces the cold
  solution **bit-for-bit** (objective, primal, duals) in zero pivots —
  extraction depends only on ``(A, b, c, basis)``, never the pivot path;
* after a structural edit (column generation's added column), a warm
  re-solve is guaranteed optimal with the cold objective to LP-roundoff;
  vertex identity is only guaranteed when the LP has a unique optimal
  basis (degenerate masters have many, and simplex entry paths may pick
  different — equally optimal — vertices);
* a stale basis (renamed/removed columns, infeasible point, singular
  matrix) silently falls back to the cold two-phase path.
"""

import numpy as np
import pytest

from repro.solvers.lp import (
    LinearProgram,
    LPStatus,
    solve_lp,
    solve_with_scipy,
    solve_with_simplex,
    supports_warm_start,
    warm_start_backends,
)


def bitwise_equal(a, b):
    return (
        a.objective_value == b.objective_value
        and np.array_equal(a.x, b.x)
        and np.array_equal(a.dual_ub, b.dual_ub)
        and np.array_equal(a.dual_eq, b.dual_eq)
    )


class TestWarmStartDispatch:
    def test_simplex_supports_warm_start(self):
        assert supports_warm_start("simplex")
        assert not supports_warm_start("scipy")
        assert warm_start_backends() == ("simplex",)

    def test_solve_lp_forwards_basis_to_simplex(self):
        lp = LinearProgram(
            objective=np.array([1.0, 2.0]),
            a_ub=np.array([[-1.0, -1.0]]),
            b_ub=np.array([-2.0]),
        )
        cold = solve_lp(lp, backend="simplex")
        assert cold.basis is not None
        warm = solve_lp(lp, backend="simplex", warm_basis=cold.basis)
        assert warm.iterations == 0
        assert bitwise_equal(warm, cold)

    def test_scipy_silently_ignores_basis(self):
        lp = LinearProgram(objective=np.array([1.0]))
        # A nonsense basis must not reach (or upset) the HiGHS backend.
        sol = solve_lp(lp, backend="scipy", warm_basis=(("x", 0),))
        assert sol.is_optimal
        assert sol.basis is None

    def test_unknown_backend_lists_choices(self):
        lp = LinearProgram(objective=np.array([1.0]))
        with pytest.raises(ValueError, match="scipy.*simplex"):
            solve_lp(lp, backend="glop")


class TestWarmStartReentry:
    def lp_pair(self):
        """An LP and the same LP with one appended column."""
        base = LinearProgram(
            objective=np.array([-1.0, -2.0, 0.0]),
            a_ub=np.array([[1.0, 1.0, 1.0], [1.0, 3.0, 0.0]]),
            b_ub=np.array([4.0, 6.0]),
            a_eq=np.array([[1.0, 1.0, 1.0]]),
            b_eq=np.array([3.0]),
        )
        extended = LinearProgram(
            objective=np.array([-1.0, -2.0, 0.0, -0.5]),
            a_ub=np.array(
                [[1.0, 1.0, 1.0, 0.3], [1.0, 3.0, 0.0, 0.1]]
            ),
            b_ub=np.array([4.0, 6.0]),
            a_eq=np.array([[1.0, 1.0, 1.0, 1.0]]),
            b_eq=np.array([3.0]),
        )
        return base, extended

    def test_same_lp_reentry_is_bitwise_and_pivot_free(self):
        base, _ = self.lp_pair()
        cold = solve_with_simplex(base)
        warm = solve_with_simplex(base, warm_basis=cold.basis)
        assert warm.iterations == 0
        assert bitwise_equal(warm, cold)

    def test_column_append_reentry_reaches_the_optimum(self):
        base, extended = self.lp_pair()
        cold_base = solve_with_simplex(base)
        warm = solve_with_simplex(
            extended, warm_basis=cold_base.basis
        )
        cold = solve_with_simplex(extended)
        assert warm.is_optimal
        assert warm.objective_value == pytest.approx(
            cold.objective_value, abs=1e-12
        )
        # Warm entry skips phase 1 entirely: strictly fewer pivots than
        # the two-phase cold run.
        assert warm.iterations < cold.iterations

    def test_stale_basis_falls_back_to_cold(self):
        base, _ = self.lp_pair()
        cold = solve_with_simplex(base)
        # A tag naming a variable that does not exist.
        stale = (("x", 99),) + tuple(cold.basis[1:])
        sol = solve_with_simplex(base, warm_basis=stale)
        assert bitwise_equal(sol, cold)

    def test_wrong_length_basis_falls_back(self):
        base, _ = self.lp_pair()
        cold = solve_with_simplex(base)
        sol = solve_with_simplex(base, warm_basis=cold.basis[:1])
        assert bitwise_equal(sol, cold)

    def test_positive_artificial_in_warm_basis_falls_back(self):
        # A redundant-row solve leaves a zero-valued artificial in the
        # basis.  Re-using that basis on an *infeasible* variant must
        # not skip phase 1's infeasibility check: the artificial would
        # sit at a positive value and the "solution" would violate the
        # original rows.
        lp1 = LinearProgram(
            objective=np.array([1.0]),
            a_eq=np.array([[1.0], [1.0]]),
            b_eq=np.array([1.0, 1.0]),
        )
        cold1 = solve_with_simplex(lp1)
        assert cold1.is_optimal
        assert any(tag[0] == "art_eq" for tag in cold1.basis)
        lp2 = LinearProgram(
            objective=np.array([1.0]),
            a_eq=np.array([[1.0], [1.0]]),
            b_eq=np.array([1.0, 2.0]),  # inconsistent: infeasible
        )
        warm = solve_with_simplex(lp2, warm_basis=cold1.basis)
        assert warm.status == LPStatus.INFEASIBLE
        assert solve_with_scipy(lp2).status == LPStatus.INFEASIBLE

    def test_zero_artificial_in_warm_basis_is_accepted(self):
        # The redundant-row case itself: re-entry with the zero-valued
        # artificial basic reproduces the cold solve bitwise.
        lp = LinearProgram(
            objective=np.array([1.0]),
            a_eq=np.array([[1.0], [1.0]]),
            b_eq=np.array([1.0, 1.0]),
        )
        cold = solve_with_simplex(lp)
        warm = solve_with_simplex(lp, warm_basis=cold.basis)
        assert warm.iterations == 0
        assert bitwise_equal(warm, cold)

    def test_infeasible_warm_point_falls_back(self):
        # Basis valid structurally but primal infeasible for the new rhs.
        lp1 = LinearProgram(
            objective=np.array([1.0, 1.0]),
            a_eq=np.array([[1.0, -1.0]]),
            b_eq=np.array([2.0]),
        )
        cold1 = solve_with_simplex(lp1)
        lp2 = LinearProgram(
            objective=np.array([1.0, 1.0]),
            a_eq=np.array([[1.0, -1.0]]),
            b_eq=np.array([-2.0]),  # x0 - x1 = -2: old vertex infeasible
        )
        warm = solve_with_simplex(lp2, warm_basis=cold1.basis)
        cold2 = solve_with_simplex(lp2)
        assert bitwise_equal(warm, cold2)


class TestAdversarialLPs:
    """Degenerate / unbounded / infeasible, cross-validated with HiGHS."""

    def test_beale_cycling_lp_terminates_via_bland(self):
        # Beale's classic example: Dantzig's rule cycles forever without
        # an anti-cycling fallback.
        lp = LinearProgram(
            objective=np.array([-0.75, 150.0, -0.02, 6.0]),
            a_ub=np.array(
                [
                    [0.25, -60.0, -0.04, 9.0],
                    [0.5, -90.0, -0.02, 3.0],
                    [0.0, 0.0, 1.0, 0.0],
                ]
            ),
            b_ub=np.array([0.0, 0.0, 1.0]),
        )
        ours = solve_with_simplex(lp)
        reference = solve_with_scipy(lp)
        assert ours.is_optimal and reference.is_optimal
        assert ours.objective_value == pytest.approx(-0.05, abs=1e-9)
        assert ours.objective_value == pytest.approx(
            reference.objective_value, abs=1e-9
        )
        np.testing.assert_allclose(
            ours.dual_ub, reference.dual_ub, atol=1e-7
        )

    def test_degenerate_transport_duals_match_scipy(self):
        # Redundant constraint system => primal degeneracy; duals of the
        # binding rows still agree with HiGHS.
        lp = LinearProgram(
            objective=np.array([2.0, 3.0, 4.0]),
            a_ub=np.array(
                [
                    [-1.0, -1.0, 0.0],
                    [0.0, -1.0, -1.0],
                    [-1.0, -1.0, -1.0],
                ]
            ),
            b_ub=np.array([-2.0, -2.0, -4.0]),
        )
        ours = solve_with_simplex(lp)
        reference = solve_with_scipy(lp)
        assert ours.is_optimal and reference.is_optimal
        assert ours.objective_value == pytest.approx(
            reference.objective_value, abs=1e-9
        )
        np.testing.assert_allclose(
            ours.dual_ub, reference.dual_ub, atol=1e-7
        )

    def test_unbounded_status_matches_scipy(self):
        lp = LinearProgram(
            objective=np.array([-1.0, 0.0]),
            a_ub=np.array([[-1.0, 1.0]]),
            b_ub=np.array([1.0]),
        )
        assert solve_with_simplex(lp).status == LPStatus.UNBOUNDED
        assert solve_with_scipy(lp).status == LPStatus.UNBOUNDED

    def test_infeasible_status_matches_scipy(self):
        lp = LinearProgram(
            objective=np.array([1.0, 1.0]),
            a_ub=np.array([[1.0, 1.0], [-1.0, -1.0]]),
            b_ub=np.array([1.0, -3.0]),  # x+y <= 1 and x+y >= 3
        )
        assert solve_with_simplex(lp).status == LPStatus.INFEASIBLE
        assert solve_with_scipy(lp).status == LPStatus.INFEASIBLE

    def test_infeasible_equality_matches_scipy(self):
        lp = LinearProgram(
            objective=np.array([1.0]),
            a_eq=np.array([[1.0], [1.0]]),
            b_eq=np.array([1.0, 2.0]),
        )
        assert solve_with_simplex(lp).status == LPStatus.INFEASIBLE
        assert solve_with_scipy(lp).status == LPStatus.INFEASIBLE

    def test_redundant_rows_keep_duals_consistent(self):
        # Duplicated equality row: the basis retains a zero artificial;
        # strong duality must still hold against the ORIGINAL rows.
        lp = LinearProgram(
            objective=np.array([1.0, 2.0]),
            a_eq=np.array([[1.0, 1.0], [1.0, 1.0]]),
            b_eq=np.array([2.0, 2.0]),
        )
        ours = solve_with_simplex(lp)
        assert ours.is_optimal
        assert ours.objective_value == pytest.approx(2.0, abs=1e-9)
        dual_value = float(ours.dual_eq @ lp.b_eq)
        assert dual_value == pytest.approx(
            ours.objective_value, abs=1e-7
        )
