"""Sparse-LU simplex factorization: bitwise parity with the dense engine.

The contract under test: the ``factorization`` knob never changes the
*answer*.  Dense and sparse runs extract through the same size-keyed
scheme, so any two solves terminating in the same basis return
bit-for-bit identical objective, primal point, duals and basis tags —
across random LPs, master-problem shapes, warm starts, and both sides
of the auto-selection threshold.
"""

import numpy as np
import pytest

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.solvers.lp import (
    FACTORIZATIONS,
    LinearProgram,
    LPStatus,
    SimplexSolver,
    solve_lp,
    solve_with_simplex,
)
from repro.solvers.lp.simplex import (
    _SPARSE_MIN_ROWS,
    _DenseEngine,
    _SparseEngine,
    _standardize,
)


def bitwise_equal(a, b):
    """Solutions agree exactly: objective, point, duals and basis."""
    return (
        a.status == b.status
        and a.objective_value == b.objective_value
        and np.array_equal(a.x, b.x)
        and np.array_equal(a.dual_ub, b.dual_ub)
        and np.array_equal(a.dual_eq, b.dual_eq)
        and a.basis == b.basis
    )


def assert_parity(a, b):
    """Engine parity for possibly-degenerate problems.

    Cold dense and sparse runs may break reduced-cost ties differently
    (their BTRAN arithmetic differs in the last ulp) and terminate in
    *different* optimal bases when the optimum is degenerate; objective
    values still agree, and whenever the final bases coincide the
    size-keyed extraction makes everything else bitwise too.
    """
    assert a.status == b.status
    if a.status == LPStatus.OPTIMAL:
        assert np.isclose(
            a.objective_value, b.objective_value, rtol=1e-9, atol=1e-9
        )
        if a.basis == b.basis:
            assert bitwise_equal(a, b)


def random_sparse_lp(seed, m=40, n=25, nnz_per_row=5):
    """A bounded, feasible inequality LP with a sparse constraint block."""
    rng = np.random.default_rng(seed)
    a_ub = np.zeros((m, n))
    for i in range(m):
        cols = rng.choice(n, size=nnz_per_row, replace=False)
        a_ub[i, cols] = rng.uniform(0.1, 1.0, size=nnz_per_row)
    return LinearProgram(
        objective=rng.uniform(-1.0, 1.0, size=n),
        a_ub=a_ub,
        b_ub=rng.uniform(2.0, 4.0, size=m),
        bounds=tuple((0.0, 1.0) for _ in range(n)),
    )


def unique_basis_lp(seed, n=20):
    """A fractional-knapsack LP whose optimal basis is *unique*.

    ``min -c'x  s.t.  a'x <= b, 0 <= x <= 1`` with almost-surely
    distinct ``c_j / a_j`` ratios and ``b`` cutting the ranked fill
    strictly inside item ``k``: the optimum takes the top-ranked items
    whole and item ``k`` fractionally, every basic variable is strictly
    positive, and the vertex is non-degenerate — so *any* pivot path,
    dense or sparse, must terminate in the same basis, making full
    bitwise equality unconditional.
    """
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.5, 1.5, size=n)
    c = rng.uniform(0.5, 1.5, size=n)
    order = np.argsort(-(c / a))
    k = n // 2
    b = float(a[order[:k]].sum() + 0.4 * a[order[k]])
    return LinearProgram(
        objective=-c,
        a_ub=a[None, :],
        b_ub=np.array([b]),
        bounds=tuple((0.0, 1.0) for _ in range(n)),
    )


def master_shape_lp(seed, n_rows=30, n_cols=12):
    """The eq.-5 master shape: free value variable, simplex row, payoffs.

    ``min -u  s.t.  u - (P q)_r <= 0  for every adversary row r,
    sum q = 1, q >= 0, u free`` — the structure every restricted master
    in the repository hands to the LP layer.
    """
    rng = np.random.default_rng(seed)
    payoffs = rng.uniform(0.0, 1.0, size=(n_rows, n_cols))
    a_ub = np.hstack([np.ones((n_rows, 1)), -payoffs])
    objective = np.zeros(n_cols + 1)
    objective[0] = -1.0
    a_eq = np.zeros((1, n_cols + 1))
    a_eq[0, 1:] = 1.0
    return LinearProgram(
        objective=objective,
        a_ub=a_ub,
        b_ub=np.zeros(n_rows),
        a_eq=a_eq,
        b_eq=np.array([1.0]),
        bounds=((None, None),) + ((0.0, None),) * n_cols,
    )


def large_scenario_lp(m=520, n=30, seed=3):
    """A sparse LP crossing ``_SPARSE_MIN_ROWS``, plus its all-slack basis.

    ``b > 0`` makes the origin feasible, so the all-slack warm basis
    skips phase 1 on both engines — the restricted-master regime the
    sparse path targets, at test-suite scale.
    """
    n_ub = m - n  # bound rows for the n (0, 1) variables fill the rest
    rng = np.random.default_rng(seed)
    a_ub = np.zeros((n_ub, n))
    for i in range(n_ub):
        cols = rng.choice(n, size=4, replace=False)
        a_ub[i, cols] = rng.uniform(0.1, 1.0, size=4)
    lp = LinearProgram(
        objective=rng.uniform(-1.0, 1.0, size=n),
        a_ub=a_ub,
        b_ub=rng.uniform(2.0, 4.0, size=n_ub),
        bounds=tuple((0.0, 1.0) for _ in range(n)),
    )
    warm = tuple(("s_ub", i) for i in range(n_ub)) + tuple(
        ("s_bnd", j) for j in range(n)
    )
    return lp, warm


class TestFactorizationKnob:
    def test_knob_values(self):
        assert FACTORIZATIONS == ("auto", "dense", "sparse")

    def test_invalid_factorization_raises(self):
        with pytest.raises(ValueError, match="choose from"):
            SimplexSolver(factorization="lu")
        with pytest.raises(ValueError, match="choose from"):
            solve_with_simplex(
                random_sparse_lp(0), factorization="cholesky"
            )

    def test_solve_lp_forwards_factorization(self):
        lp = random_sparse_lp(1)
        dense = solve_lp(lp, backend="simplex", factorization="dense")
        sparse = solve_lp(lp, backend="simplex", factorization="sparse")
        assert dense.is_optimal
        assert bitwise_equal(dense, sparse)

    def test_scipy_backend_ignores_factorization(self):
        lp = random_sparse_lp(2)
        sol = solve_lp(lp, backend="scipy", factorization="sparse")
        assert sol.is_optimal


class TestAutoSelection:
    def _engine_for(self, lp, factorization="auto"):
        solver = SimplexSolver(factorization=factorization)
        return solver._make_engine(_standardize(lp))

    def test_small_problem_stays_dense(self):
        assert isinstance(
            self._engine_for(random_sparse_lp(0)), _DenseEngine
        )

    def test_large_sparse_problem_goes_sparse(self):
        lp, _ = large_scenario_lp()
        std = _standardize(lp)
        assert std.a.shape[0] >= _SPARSE_MIN_ROWS
        assert isinstance(self._engine_for(lp), _SparseEngine)

    def test_large_dense_problem_stays_dense(self):
        # The dense block must rival the slack identity in width, or the
        # standardized matrix is sparse no matter how dense A_ub is.
        rng = np.random.default_rng(0)
        n = 300
        lp = LinearProgram(
            objective=rng.uniform(-1.0, 1.0, size=n),
            a_ub=rng.uniform(0.1, 1.0, size=(_SPARSE_MIN_ROWS, n)),
            b_ub=rng.uniform(2.0, 4.0, size=_SPARSE_MIN_ROWS),
        )
        assert isinstance(self._engine_for(lp), _DenseEngine)

    def test_forced_modes_override_auto(self):
        small = random_sparse_lp(0)
        assert isinstance(
            self._engine_for(small, "sparse"), _SparseEngine
        )
        large, _ = large_scenario_lp()
        assert isinstance(
            self._engine_for(large, "dense"), _DenseEngine
        )

    def test_factorization_used_reported_per_solve(self):
        solver = SimplexSolver(factorization="sparse")
        assert solver._factorization_used is None
        solver.solve(random_sparse_lp(0))
        assert solver._factorization_used == "sparse"
        dense = SimplexSolver(factorization="auto")
        dense.solve(random_sparse_lp(0))
        assert dense._factorization_used == "dense"


class TestSparseDenseParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_unique_basis_lps_bitwise(self, seed):
        # Unique optimal basis: cold dense and cold sparse runs cannot
        # disagree, whatever pivot paths they take.
        lp = unique_basis_lp(seed)
        dense = solve_with_simplex(lp, factorization="dense")
        sparse = solve_with_simplex(lp, factorization="sparse")
        assert dense.is_optimal
        assert bitwise_equal(dense, sparse)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_lps_parity(self, seed):
        lp = random_sparse_lp(seed)
        dense = solve_with_simplex(lp, factorization="dense")
        sparse = solve_with_simplex(lp, factorization="sparse")
        assert dense.is_optimal
        assert_parity(dense, sparse)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_lps_same_basis_closure(self, seed):
        # The path-independent extraction contract: a sparse run entered
        # at the dense run's final basis terminates there and must agree
        # on every output bit — and vice versa.
        lp = random_sparse_lp(seed)
        dense = solve_with_simplex(lp, factorization="dense")
        sparse = solve_with_simplex(
            lp, warm_basis=dense.basis, factorization="sparse"
        )
        assert bitwise_equal(dense, sparse)
        cold_sparse = solve_with_simplex(lp, factorization="sparse")
        re_dense = solve_with_simplex(
            lp, warm_basis=cold_sparse.basis, factorization="dense"
        )
        assert bitwise_equal(cold_sparse, re_dense)

    @pytest.mark.parametrize("seed", range(4))
    def test_master_shape_parity_and_closure(self, seed):
        lp = master_shape_lp(seed)
        dense = solve_with_simplex(lp, factorization="dense")
        sparse = solve_with_simplex(lp, factorization="sparse")
        assert dense.is_optimal
        assert_parity(dense, sparse)
        anchored = solve_with_simplex(
            lp, warm_basis=dense.basis, factorization="sparse"
        )
        assert bitwise_equal(dense, anchored)

    def test_infeasible_status_parity(self):
        lp = LinearProgram(
            objective=np.array([1.0]),
            a_eq=np.array([[1.0]]),
            b_eq=np.array([-2.0]),  # x >= 0 cannot hit -2
        )
        for mode in ("dense", "sparse"):
            sol = solve_with_simplex(lp, factorization=mode)
            assert sol.status == LPStatus.INFEASIBLE

    def test_unbounded_status_parity(self):
        lp = LinearProgram(
            objective=np.array([-1.0]),
            a_ub=np.array([[-1.0]]),
            b_ub=np.array([0.0]),
        )
        for mode in ("dense", "sparse"):
            sol = solve_with_simplex(lp, factorization=mode)
            assert sol.status == LPStatus.UNBOUNDED

    def test_frequent_refactorization_parity(self):
        # refactor_every=1 re-factorizes after every pivot.  The freshly
        # solved iterate differs from the eta-product one in the last
        # ulp, so the pivot path (and a degenerate final basis) may
        # move — but the optimum may not.
        lp = master_shape_lp(1)
        for mode in ("dense", "sparse"):
            solver = SimplexSolver(refactor_every=1, factorization=mode)
            churned = solver.solve(lp)
            assert churned.is_optimal
            assert solver._refactorizations > 0
            assert_parity(
                SimplexSolver(factorization=mode).solve(lp), churned
            )
        # On a unique-basis problem the churn is a full bitwise no-op.
        lp = unique_basis_lp(0)
        for mode in ("dense", "sparse"):
            baseline = SimplexSolver(factorization=mode).solve(lp)
            churned = SimplexSolver(
                refactor_every=1, factorization=mode
            ).solve(lp)
            assert bitwise_equal(baseline, churned)


class TestWarmStartSparse:
    def test_warm_sparse_equals_cold(self):
        lp = master_shape_lp(2)
        cold = solve_with_simplex(lp, factorization="sparse")
        warm = solve_with_simplex(
            lp, warm_basis=cold.basis, factorization="sparse"
        )
        assert warm.iterations <= cold.iterations
        assert bitwise_equal(cold, warm)

    def test_cross_engine_warm_start(self):
        # A dense solve's basis re-enters the sparse engine (and back).
        lp = master_shape_lp(3)
        dense = solve_with_simplex(lp, factorization="dense")
        warm_sparse = solve_with_simplex(
            lp, warm_basis=dense.basis, factorization="sparse"
        )
        assert bitwise_equal(dense, warm_sparse)
        warm_dense = solve_with_simplex(
            lp, warm_basis=warm_sparse.basis, factorization="dense"
        )
        assert bitwise_equal(dense, warm_dense)

    def test_stale_warm_basis_falls_back_cold(self):
        lp = random_sparse_lp(3)
        stale = (("x", 99),) * (len(solve_with_simplex(lp).basis))
        sol = solve_with_simplex(
            lp, warm_basis=stale, factorization="sparse"
        )
        assert sol.is_optimal
        assert bitwise_equal(sol, solve_with_simplex(lp))

    def test_singular_warm_basis_falls_back_cold(self):
        # Variable 2's column is identically zero, so a basis naming it
        # is singular: splu's RuntimeError must be normalized into the
        # LinAlgError the cold-fallback logic catches.
        lp = LinearProgram(
            objective=np.array([1.0, 1.0, 0.0]),
            a_ub=np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]]),
            b_ub=np.array([2.0, 3.0]),
        )
        cold = solve_with_simplex(lp, factorization="sparse")
        singular = (("x", 2), ("s_ub", 1))
        sol = solve_with_simplex(
            lp, warm_basis=singular, factorization="sparse"
        )
        assert sol.is_optimal
        assert bitwise_equal(sol, cold)


@pytest.fixture()
def registry():
    reg = obs.MetricsRegistry()
    obs_metrics.enable(reg)
    yield reg
    obs_metrics.disable()


class TestLargeCrossing:
    """Auto-selection above ``_SPARSE_MIN_ROWS``: parity and telemetry."""

    def test_auto_goes_sparse_and_matches_dense_bitwise(self, registry):
        lp, warm = large_scenario_lp()
        dense_solver = SimplexSolver(factorization="dense")
        dense = dense_solver.solve(lp, warm_basis=warm)
        auto_solver = SimplexSolver(factorization="auto")
        auto = auto_solver.solve(lp, warm_basis=warm)
        assert dense.is_optimal
        assert dense_solver._factorization_used == "dense"
        assert auto_solver._factorization_used == "sparse"
        assert bitwise_equal(dense, auto)
        assert registry.get_counter(
            "repro_simplex_factorization_total", kind="dense"
        ) == 1.0
        assert registry.get_counter(
            "repro_simplex_factorization_total", kind="sparse"
        ) == 1.0
