"""LP substrate: problem container, simplex-from-scratch, backends."""

import numpy as np
import pytest

from repro.solvers.lp import (
    LinearProgram,
    LPStatus,
    available_backends,
    solve_lp,
    solve_with_scipy,
    solve_with_simplex,
)


def both_backends(problem):
    return solve_with_scipy(problem), solve_with_simplex(problem)


class TestLinearProgram:
    def test_default_bounds_nonnegative(self):
        lp = LinearProgram(objective=np.array([1.0, 2.0]))
        assert lp.bounds == ((0.0, None), (0.0, None))

    def test_rejects_matrix_without_rhs(self):
        with pytest.raises(ValueError):
            LinearProgram(
                objective=np.array([1.0]), a_ub=np.array([[1.0]])
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            LinearProgram(
                objective=np.array([1.0]),
                a_ub=np.array([[1.0, 2.0]]),
                b_ub=np.array([1.0]),
            )

    def test_rejects_empty_bound_interval(self):
        with pytest.raises(ValueError):
            LinearProgram(
                objective=np.array([1.0]), bounds=((2.0, 1.0),)
            )

    def test_reduced_cost_helper(self):
        lp = LinearProgram(
            objective=np.array([1.0]),
            a_ub=np.array([[1.0]]),
            b_ub=np.array([2.0]),
        )
        sol = solve_lp(lp)
        rc = sol.reduced_cost(
            column_objective=3.0, column_ub=np.array([1.0])
        )
        assert np.isclose(rc, 3.0 - sol.dual_ub[0])


class TestSimplexBasics:
    def test_simple_bounded_min(self):
        # min -x - 2y st x + y <= 4, x <= 3, y <= 2 -> (2 or 3, 2).
        lp = LinearProgram(
            objective=np.array([-1.0, -2.0]),
            a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([4.0]),
            bounds=((0.0, 3.0), (0.0, 2.0)),
        )
        scipy_sol, simplex_sol = both_backends(lp)
        assert simplex_sol.is_optimal
        assert np.isclose(
            simplex_sol.objective_value, scipy_sol.objective_value
        )
        assert np.isclose(simplex_sol.objective_value, -6.0)

    def test_equality_constraints(self):
        # min x + y st x + 2y == 4 -> y=2, x=0.
        lp = LinearProgram(
            objective=np.array([1.0, 1.0]),
            a_eq=np.array([[1.0, 2.0]]),
            b_eq=np.array([4.0]),
        )
        sol = solve_with_simplex(lp)
        assert sol.is_optimal
        assert np.isclose(sol.objective_value, 2.0)
        assert np.allclose(sol.x, [0.0, 2.0])

    def test_free_variable(self):
        # min x st x >= -5 via ub row; x free.
        lp = LinearProgram(
            objective=np.array([1.0]),
            a_ub=np.array([[-1.0]]),
            b_ub=np.array([5.0]),
            bounds=((None, None),),
        )
        sol = solve_with_simplex(lp)
        assert sol.is_optimal
        assert np.isclose(sol.x[0], -5.0)

    def test_negative_lower_bound(self):
        lp = LinearProgram(
            objective=np.array([1.0]),
            bounds=((-3.0, 7.0),),
        )
        sol = solve_with_simplex(lp)
        assert sol.is_optimal
        assert np.isclose(sol.x[0], -3.0)

    def test_infeasible(self):
        lp = LinearProgram(
            objective=np.array([1.0]),
            a_eq=np.array([[1.0]]),
            b_eq=np.array([-2.0]),  # x >= 0 cannot hit -2
        )
        assert solve_with_simplex(lp).status == LPStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram(
            objective=np.array([-1.0]),
            a_ub=np.array([[-1.0]]),
            b_ub=np.array([0.0]),
        )
        assert solve_with_simplex(lp).status == LPStatus.UNBOUNDED

    def test_unconstrained_problem(self):
        lp = LinearProgram(
            objective=np.array([2.0, -3.0]),
            bounds=((0.0, None), (None, 5.0)),
        )
        sol = solve_with_simplex(lp)
        assert sol.is_optimal
        assert np.allclose(sol.x, [0.0, 5.0])

    def test_unconstrained_unbounded(self):
        lp = LinearProgram(
            objective=np.array([-1.0]), bounds=((0.0, None),)
        )
        assert solve_with_simplex(lp).status == LPStatus.UNBOUNDED

    def test_require_optimal_raises(self):
        lp = LinearProgram(
            objective=np.array([1.0]),
            a_eq=np.array([[1.0]]),
            b_eq=np.array([-1.0]),
        )
        with pytest.raises(RuntimeError):
            solve_with_simplex(lp).require_optimal()


class TestDuals:
    def test_strong_duality_on_inequality_lp(self):
        lp = LinearProgram(
            objective=np.array([3.0, 5.0]),
            a_ub=np.array([[-1.0, -2.0], [-3.0, -1.0]]),
            b_ub=np.array([-6.0, -9.0]),  # x + 2y >= 6, 3x + y >= 9
        )
        for sol in both_backends(lp):
            assert sol.is_optimal
            dual_value = float(sol.dual_ub @ lp.b_ub)
            assert np.isclose(dual_value, sol.objective_value, atol=1e-7)
            assert np.all(sol.dual_ub <= 1e-9)

    def test_equality_duals_match_scipy(self):
        lp = LinearProgram(
            objective=np.array([2.0, 1.0, 4.0]),
            a_eq=np.array([[1.0, 1.0, 1.0]]),
            b_eq=np.array([5.0]),
        )
        scipy_sol, simplex_sol = both_backends(lp)
        assert np.isclose(
            simplex_sol.dual_eq[0], scipy_sol.dual_eq[0], atol=1e-7
        )


class TestBackendDispatch:
    def test_available(self):
        assert set(available_backends()) == {"scipy", "simplex"}

    def test_unknown_backend(self):
        lp = LinearProgram(objective=np.array([1.0]))
        with pytest.raises(ValueError):
            solve_lp(lp, backend="gurobi")

    def test_dispatch_agreement(self):
        lp = LinearProgram(
            objective=np.array([1.0, -1.0]),
            a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([3.0]),
            bounds=((0.0, None), (0.0, 2.0)),
        )
        a = solve_lp(lp, backend="scipy")
        b = solve_lp(lp, backend="simplex")
        assert np.isclose(a.objective_value, b.objective_value)
