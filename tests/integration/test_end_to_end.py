"""Integration tests: full pipelines across modules."""

import numpy as np
import pytest

from repro.baselines import GreedyBenefitBaseline, RandomOrderBaseline
from repro.core import AuditPolicy
from repro.datasets import (
    EMRConfig,
    build_emr_world,
    rea_a,
    rea_b,
    simulate_emr_log,
    syn_a,
)
from repro.datasets.emr import EMR_TYPE_NAMES, learn_count_models
from repro.solvers import (
    CGGSSolver,
    iterative_shrink,
    make_fixed_solver,
    response_report,
    solve_optimal,
)


class TestSynAPipeline:
    """Brute force, ISHM and CGGS agree on the controlled dataset."""

    def test_ishm_close_to_bruteforce(self):
        game = syn_a(budget=6)
        scenarios = game.scenario_set()
        optimal = solve_optimal(game, scenarios)
        heuristic = iterative_shrink(game, scenarios, step_size=0.1)
        assert heuristic.objective >= optimal.objective - 1e-9
        gap = heuristic.objective - optimal.objective
        assert gap <= 0.02 * abs(optimal.objective) + 1e-6

    def test_cggs_inside_ishm_close_to_enumeration(self):
        game = syn_a(budget=6)
        scenarios = game.scenario_set()
        enum_result = iterative_shrink(game, scenarios, step_size=0.2)
        cggs_solver = make_fixed_solver(
            game, scenarios, method="cggs",
            rng=np.random.default_rng(0),
        )
        cggs_result = iterative_shrink(
            game, scenarios, step_size=0.2, solver=cggs_solver
        )
        # Table VI: gamma2 is close to gamma1.
        denom = max(abs(enum_result.objective), 1.0)
        assert abs(
            cggs_result.objective - enum_result.objective
        ) / denom < 0.1

    def test_policy_evaluation_roundtrip(self):
        game = syn_a(budget=10)
        scenarios = game.scenario_set()
        result = iterative_shrink(game, scenarios, step_size=0.25)
        ev = game.evaluate(result.policy, scenarios)
        assert ev.auditor_loss == pytest.approx(result.objective,
                                                abs=1e-9)


class TestEMRPipeline:
    """Simulated logs -> learned distributions -> solved game."""

    CONFIG = EMRConfig(
        n_days=4,
        pool_margin=1.05,
        benign_daily_mean=100.0,
        benign_daily_std=15.0,
        seed=7,
    )

    def test_learned_distributions_feed_the_game(self):
        world = build_emr_world(self.CONFIG)
        log = simulate_emr_log(world)
        models = learn_count_models(log, method="gaussian")
        assert len(models) == len(EMR_TYPE_NAMES)
        assert all(m.max_count > 0 for m in models)

    def test_solve_and_report(self):
        game = rea_a(budget=60, config=self.CONFIG)
        rng = np.random.default_rng(0)
        scenarios = game.scenario_set(rng=rng, n_samples=300)
        solver = CGGSSolver(game, scenarios, rng=rng)
        result = iterative_shrink(
            game, scenarios, step_size=0.4, solver=solver.solve
        )
        report = response_report(game, result.policy, scenarios)
        assert report.auditor_loss == pytest.approx(
            result.objective, abs=1e-6
        )
        # Proposed beats the non-strategic baseline (Figure 1 headline).
        greedy = GreedyBenefitBaseline(game, scenarios).run()
        assert result.objective <= greedy.auditor_loss + 1e-9


class TestCreditPipeline:
    def test_solve_and_compare_baselines(self):
        game = rea_b(budget=150)
        rng = np.random.default_rng(1)
        scenarios = game.scenario_set(rng=rng, n_samples=300)
        result = iterative_shrink(
            game, scenarios, step_size=0.4,
            solver=make_fixed_solver(game, scenarios, rng=rng),
        )
        random_orders = RandomOrderBaseline(
            game, scenarios, n_orderings=120, rng=rng
        ).run(result.thresholds)
        assert result.objective <= random_orders.auditor_loss + 1e-9

    def test_large_budget_deters_everyone(self):
        game = rea_b(budget=600)
        rng = np.random.default_rng(2)
        scenarios = game.scenario_set(rng=rng, n_samples=300)
        result = iterative_shrink(
            game, scenarios, step_size=0.4,
            solver=make_fixed_solver(game, scenarios, rng=rng),
        )
        # With a budget larger than the whole alert stream the auditor
        # can audit everything: full deterrence, zero loss (Figure 2).
        assert result.objective == pytest.approx(0.0, abs=1e-6)


class TestDeploymentLoop:
    """Sample an ordering from the mixed policy, as a deployment would."""

    def test_sampled_orderings_follow_policy(self):
        game = syn_a(budget=10)
        scenarios = game.scenario_set()
        result = iterative_shrink(game, scenarios, step_size=0.25)
        policy: AuditPolicy = result.policy
        rng = np.random.default_rng(3)
        draws = [
            tuple(policy.sample_ordering(rng)) for _ in range(400)
        ]
        support = {tuple(o) for o in policy.orderings}
        assert set(draws) <= support
