"""bench_manifest.json is the one source of truth for bench names.

CI's record-presence check and ``benchmarks/check_perf_trend.py`` both
read it; these tests keep the manifest well-formed and consistent with
what is actually committed, so a bench added (or a baseline recorded)
without a manifest entry fails here instead of silently skipping its
perf guard.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO / "benchmarks"
MANIFEST = BENCH_DIR / "bench_manifest.json"


def _names() -> list[str]:
    return json.loads(MANIFEST.read_text(encoding="utf-8"))["benches"]


def test_manifest_is_sorted_and_unique():
    names = _names()
    assert names == sorted(set(names))
    assert all(re.fullmatch(r"[a-z0-9_]+", n) for n in names)


def test_every_committed_baseline_is_in_the_manifest():
    names = set(_names())
    for record in (BENCH_DIR / "baselines").glob("BENCH_*.json"):
        assert record.stem.removeprefix("BENCH_") in names, (
            f"{record.name} has no bench_manifest.json entry"
        )


def test_every_bench_module_is_plausibly_covered():
    # Record names don't map 1:1 to files (one module can emit several
    # records), but every bench module's stem should be a substring
    # match for at least one manifest entry — catches adding
    # bench_foo.py without any manifest update.
    names = _names()
    for module in BENCH_DIR.glob("bench_*.py"):
        stem = module.stem.removeprefix("bench_").removeprefix("ablation_")
        assert any(stem in name or name in stem for name in names), (
            f"{module.name}: no related entry in bench_manifest.json"
        )


def test_check_perf_trend_uses_the_manifest():
    source = (BENCH_DIR / "check_perf_trend.py").read_text(
        encoding="utf-8"
    )
    assert "bench_manifest.json" in source
