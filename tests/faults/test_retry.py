"""RetryPolicy backoff determinism, retry semantics, and the breaker."""

from __future__ import annotations

import time

import pytest

from repro.faults import CircuitBreaker, RetryPolicy, call_with_timeout
from repro.faults.breaker import BREAKER_STATE_CODES


class TestBackoff:
    def test_deterministic_per_attempt(self):
        policy = RetryPolicy(seed=11)
        first = [policy.backoff(i) for i in range(5)]
        second = [policy.backoff(i) for i in range(5)]
        assert first == second

    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(
            max_attempts=10,
            backoff_base=0.1,
            backoff_factor=2.0,
            backoff_max=0.5,
            jitter=0.0,
        )
        values = [policy.backoff(i) for i in range(6)]
        assert values[:3] == [0.1, 0.2, 0.4]
        assert all(v == 0.5 for v in values[3:])

    def test_jitter_is_bounded_and_seed_dependent(self):
        jittered = RetryPolicy(backoff_base=1.0, backoff_max=10.0,
                               jitter=0.25, seed=1)
        base = RetryPolicy(backoff_base=1.0, backoff_max=10.0, jitter=0.0)
        for attempt in range(4):
            lo = base.backoff(attempt)
            assert lo <= jittered.backoff(attempt) <= lo * 1.25
        other = RetryPolicy(backoff_base=1.0, backoff_max=10.0,
                            jitter=0.25, seed=2)
        assert [jittered.backoff(i) for i in range(4)] != [
            other.backoff(i) for i in range(4)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestCall:
    def test_retries_until_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "done"

        policy = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)
        assert policy.call(flaky) == "done"
        assert calls["n"] == 3

    def test_reraises_after_max_attempts(self):
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise ValueError("permanent")

        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)
        with pytest.raises(ValueError, match="permanent"):
            policy.call(always_fails)
        assert calls["n"] == 2

    def test_single_attempt_policy_never_retries(self):
        calls = {"n": 0}

        def fails():
            calls["n"] += 1
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            RetryPolicy(max_attempts=1).call(fails)
        assert calls["n"] == 1


class TestCallWithTimeout:
    def test_fast_call_returns(self):
        assert call_with_timeout(lambda: 42, timeout=5.0) == 42

    def test_slow_call_times_out(self):
        def slow():
            time.sleep(5.0)

        started = time.perf_counter()
        with pytest.raises(TimeoutError, match="deadline"):
            call_with_timeout(slow, timeout=0.05)
        # The wait is bounded by the deadline, not the workload.
        assert time.perf_counter() - started < 1.0

    def test_exceptions_propagate(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError, match="inner"):
            call_with_timeout(boom, timeout=5.0)


class TestCircuitBreaker:
    def make(self, threshold=3, reset=10.0):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=threshold,
            reset_seconds=reset,
            clock=lambda: clock["now"],
        )
        return breaker, clock

    def test_opens_at_threshold(self):
        breaker, _ = self.make(threshold=3)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.state == "closed" and breaker.allow()
        assert breaker.record_failure() is True  # the opening transition
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_cooldown_grants_probe_then_success_closes(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock["now"] = 10.0
        assert breaker.allow()  # the half-open probe
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0

    def test_half_open_failure_reopens_and_restamps(self):
        breaker, clock = self.make(threshold=2, reset=10.0)
        breaker.record_failure()
        breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.allow()
        assert breaker.record_failure() is True  # single probe failure
        assert breaker.state == "open"
        clock["now"] = 15.0  # cooldown restarted at t=10
        assert not breaker.allow()
        clock["now"] = 20.0
        assert breaker.allow()

    def test_state_codes_cover_all_states(self):
        breaker, _ = self.make()
        assert BREAKER_STATE_CODES[breaker.state] == 0
        assert set(BREAKER_STATE_CODES) == {"closed", "open", "half_open"}

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_seconds=-1.0)
