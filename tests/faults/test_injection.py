"""FaultPlan mechanics: determinism, rule matching, spec parsing."""

from __future__ import annotations

import importlib
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro import faults
from repro.faults import (
    KNOWN_POINTS,
    FaultInjected,
    FaultPlan,
    FaultRule,
)


def _drive(plan: FaultPlan, names: list[str]) -> list[str | None]:
    """Check every name under the plan, recording what was injected."""
    outcomes: list[str | None] = []
    for name in names:
        try:
            plan.check(name)
            outcomes.append(None)
        except BaseException as exc:  # noqa: B036 - records injected types
            outcomes.append(type(exc).__name__)
    return outcomes


class TestDeterminism:
    def test_same_seed_same_history(self, chaos_seed):
        plan = FaultPlan(
            [
                FaultRule("a", probability=0.3),
                FaultRule("b", probability=0.7, raises=ValueError),
            ],
            seed=chaos_seed,
        )
        workload = ["a", "b", "a", "b", "b", "a"] * 20
        first = _drive(plan, workload)
        first_history = plan.history
        plan.reset()
        second = _drive(plan, workload)
        assert first == second
        assert plan.history == first_history
        assert any(first)  # something actually fired at these rates

    def test_different_seeds_diverge(self):
        workload = ["x"] * 200
        runs = []
        for seed in (1, 2):
            plan = FaultPlan([FaultRule("x", probability=0.5)], seed=seed)
            runs.append(_drive(plan, workload))
        assert runs[0] != runs[1]

    def test_always_on_rules_consume_no_draws(self, chaos_seed):
        # A probability-1.0 rule must not shift the RNG stream of the
        # probabilistic rules around it.
        prob_only = FaultPlan(
            [FaultRule("p", probability=0.5)], seed=chaos_seed
        )
        mixed = FaultPlan(
            [
                FaultRule("always", raises=None, latency=0.0),
                FaultRule("p", probability=0.5),
            ],
            seed=chaos_seed,
        )
        workload = ["p"] * 50
        baseline = _drive(prob_only, workload)
        interleaved = []
        for name in workload:
            mixed.check("always")
            interleaved.extend(_drive(mixed, [name]))
        assert interleaved == baseline


class TestRules:
    def test_nth_fires_exactly_once(self):
        plan = FaultPlan([FaultRule("x", nth=3)])
        outcomes = _drive(plan, ["x"] * 5)
        assert outcomes == [None, None, "FaultInjected", None, None]
        assert plan.calls("x") == 5
        assert plan.history == (("x", 3, "raise=FaultInjected"),)

    def test_pattern_matching(self):
        plan = FaultPlan([FaultRule("solvers.*", raises=ValueError)])
        with pytest.raises(ValueError):
            plan.check("solvers.lp.scipy")
        plan.check("engine.solve")  # no match, no raise

    def test_latency_only_rule(self):
        plan = FaultPlan([FaultRule("slow", raises=None, latency=0.02)])
        started = time.perf_counter()
        plan.check("slow")
        assert time.perf_counter() - started >= 0.02
        assert plan.history == (("slow", 1, "latency=0.02"),)

    def test_custom_exception_type(self):
        plan = FaultPlan([FaultRule("pool", raises=BrokenProcessPool)])
        with pytest.raises(BrokenProcessPool):
            plan.check("pool")

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultRule("x", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule("x", nth=0)
        with pytest.raises(ValueError):
            FaultRule("x", latency=-1.0)
        with pytest.raises(ValueError):
            FaultRule("")


class TestSpecParsing:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "seed=7; engine.parallel.pool: exc=BrokenProcessPool, nth=1;"
            " solvers.lp.scipy: p=0.25; serve.resolve: latency=0.5,"
            " exc=none"
        )
        assert plan.seed == 7
        assert len(plan.rules) == 3
        pool, scipy, serve = plan.rules
        assert pool.raises is BrokenProcessPool and pool.nth == 1
        assert scipy.probability == 0.25
        assert serve.raises is None and serve.latency == 0.5

    def test_bare_point_name(self):
        plan = FaultPlan.parse("engine.solve")
        assert plan.rules[0].point == "engine.solve"
        assert plan.rules[0].raises is FaultInjected

    def test_errors(self):
        with pytest.raises(ValueError, match="unknown exception"):
            FaultPlan.parse("x: exc=KeyboardInterrupt")
        with pytest.raises(ValueError, match="unknown fault option"):
            FaultPlan.parse("x: frequency=2")
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.parse("x: nonsense")

    def test_describe_round_trip(self):
        plan = FaultPlan.parse("seed=3; a: p=0.5; b: nth=2, exc=OSError")
        text = plan.describe()
        assert "seed=3" in text and "p=0.5" in text and "nth=2" in text


class TestGlobalToggle:
    def test_disabled_is_noop(self):
        faults.disable()
        # Would raise on every call if armed.
        faults.point("engine.solve")
        assert not faults.enabled()

    def test_active_plan_restores(self):
        faults.disable()
        plan = FaultPlan([FaultRule("x")])
        with faults.active_plan(plan):
            assert faults.enabled()
            with pytest.raises(FaultInjected):
                faults.point("x")
        assert not faults.enabled()

    def test_enable_without_plan_installs_empty(self):
        faults.disable()
        injection = importlib.import_module("repro.faults.injection")
        injection._plan = None
        plan = faults.enable()
        assert plan.rules == ()
        faults.point("anything")  # empty plan: counted, never fires
        assert plan.calls("anything") == 1

    def test_env_spec_parsing(self):
        injection = importlib.import_module("repro.faults.injection")
        cases = {
            "": (False, None),
            "0": (False, None),
            "off": (False, None),
            "1": (True, ()),
        }
        for raw, (enabled, rules) in cases.items():
            env_backup = dict(injection.os.environ)
            injection.os.environ["REPRO_FAULTS"] = raw
            try:
                got_enabled, got_plan = injection._env_plan()
                assert got_enabled is enabled, raw
                if rules is not None:
                    assert got_plan.rules == rules
            finally:
                injection.os.environ.clear()
                injection.os.environ.update(env_backup)


class TestKnownPoints:
    def test_every_point_is_registered_in_its_module(self):
        for name, module_name, _desc in KNOWN_POINTS:
            module = importlib.import_module(module_name)
            source = open(module.__file__, encoding="utf-8").read()
            assert f'faults.point("{name}")' in source, (
                f"{module_name} lost its {name!r} injection point"
            )

    def test_point_names_are_unique(self):
        names = [name for name, _, _ in KNOWN_POINTS]
        assert len(names) == len(set(names))
