"""Shared fault-injection fixtures.

Every test runs under an autouse guard that snapshots and restores the
module-global injection state, so an assertion failure mid-test can
never leak an armed plan into the rest of the suite.  The chaos seed
comes from ``REPRO_CHAOS_SEED`` (the dedicated CI job pins it), so the
whole suite replays one deterministic failure schedule.
"""

from __future__ import annotations

import os

import pytest

from repro.faults import injection


@pytest.fixture(autouse=True)
def _restore_fault_state():
    saved = (injection._enabled, injection._plan)
    yield
    injection._enabled, injection._plan = saved


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    return int(os.environ.get("REPRO_CHAOS_SEED", "20240808"))
