"""Degradation paths under injected faults, with determinism preserved.

The acceptance contract: every fallback (pool rebuild -> serial, scipy
-> simplex, warm -> cold, solve -> previous policy) produces answers
the healthy path would also have produced, and chaos runs replay
bit-for-bit under an equal-seed plan.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro import faults
from repro.engine import AuditEngine, FixedSolveCache
from repro.faults import FaultInjected, FaultPlan, FaultRule
from repro.sim import simulate
from repro.solvers.lp import LinearProgram, LPStatus, solve_lp
from repro.solvers.lp.simplex import solve_with_simplex
from tests.conftest import make_tiny_game

FAST = {"step_size": 0.5}


def _solutions_equal(a, b) -> bool:
    return (
        a.objective == b.objective
        and tuple(map(tuple, a.policy.orderings))
        == tuple(map(tuple, b.policy.orderings))
        and np.array_equal(a.policy.probabilities, b.policy.probabilities)
        and np.array_equal(a.policy.thresholds, b.policy.thresholds)
    )


@pytest.fixture()
def batch(tiny_game):
    rng = np.random.default_rng(7)
    upper = np.ceil(tiny_game.threshold_upper_bounds())
    return rng.integers(
        0, upper + 1, size=(6, tiny_game.n_types)
    ).astype(np.float64)


class TestPoolDegradation:
    def test_broken_pool_falls_back_serial_bitwise(
        self, tiny_game, tiny_scenarios, batch
    ):
        reference = FixedSolveCache(tiny_game, tiny_scenarios).price_batch(
            batch, method="enumeration", workers=1
        )
        # Every parallel attempt dies (rebuild included): the cache must
        # finish the batch serially and match workers=1 exactly.
        plan = FaultPlan(
            [FaultRule("engine.parallel.pool", raises=BrokenProcessPool)]
        )
        with faults.active_plan(plan):
            with FixedSolveCache(tiny_game, tiny_scenarios) as cache:
                degraded = cache.price_batch(
                    batch, method="enumeration", workers=2
                )
        assert plan.calls("engine.parallel.pool") == 2  # initial + rebuild
        assert len(degraded) == len(reference)
        for got, want in zip(degraded, reference, strict=True):
            assert _solutions_equal(got, want)

    def test_single_crash_recovers_via_rebuild(
        self, tiny_game, tiny_scenarios, batch
    ):
        reference = FixedSolveCache(tiny_game, tiny_scenarios).price_batch(
            batch, method="enumeration", workers=1
        )
        plan = FaultPlan(
            [
                FaultRule(
                    "engine.parallel.pool",
                    raises=BrokenProcessPool,
                    nth=1,
                )
            ]
        )
        with faults.active_plan(plan):
            with FixedSolveCache(tiny_game, tiny_scenarios) as cache:
                recovered = cache.price_batch(
                    batch, method="enumeration", workers=2
                )
        assert plan.calls("engine.parallel.pool") == 2
        for got, want in zip(recovered, reference, strict=True):
            assert _solutions_equal(got, want)


class TestLpBackendDegradation:
    #: min x0 + x1  s.t.  x0 + x1 >= 1, x0 - x1 <= 0.25, x >= 0
    LP = LinearProgram(
        objective=np.array([1.0, 1.0]),
        a_ub=np.array([[-1.0, -1.0], [1.0, -1.0]]),
        b_ub=np.array([-1.0, 0.25]),
        bounds=((0.0, None), (0.0, None)),
    )

    def test_scipy_crash_falls_back_to_simplex(self):
        reference = solve_with_simplex(self.LP)
        plan = FaultPlan([FaultRule("solvers.lp.scipy")])
        with faults.active_plan(plan):
            degraded = solve_lp(self.LP, backend="scipy")
        assert plan.calls("solvers.lp.scipy") == 1
        assert degraded.status == LPStatus.OPTIMAL
        assert degraded.objective_value == reference.objective_value
        assert np.array_equal(degraded.x, reference.x)

    def test_healthy_scipy_still_used(self):
        solution = solve_lp(self.LP, backend="scipy")
        assert solution.status == LPStatus.OPTIMAL
        assert np.isclose(solution.objective_value, 1.0)


class TestMasterWarmDegradation:
    def test_warm_failure_falls_back_cold(self, tiny_game):
        with AuditEngine(tiny_game, backend="simplex") as engine:
            clean = engine.solve("cggs")
        plan = FaultPlan([FaultRule("solvers.master.warm")])
        with faults.active_plan(plan):
            with AuditEngine(tiny_game, backend="simplex") as engine:
                degraded = engine.solve("cggs")
        # The warm path was genuinely exercised and failed every time...
        assert plan.calls("solvers.master.warm") > 0
        assert len(plan.history) == plan.calls("solvers.master.warm")
        # ...and cold re-solves landed on the same optimum (cold paths
        # round differently at machine precision, hence isclose — the
        # existing warm-equivalence sim tests use the same tolerance).
        assert np.isclose(degraded.objective, clean.objective)
        assert np.allclose(
            degraded.policy.probabilities, clean.policy.probabilities
        )


class TestSimDegradation:
    def test_failed_period_replays_previous_policy(self):
        clean = simulate(
            make_tiny_game(budget=3.0),
            n_periods=4,
            warm_start=False,
            solver_options=FAST,
        )
        plan = FaultPlan([FaultRule("sim.solve", nth=3)])
        with faults.active_plan(plan):
            degraded = simulate(
                make_tiny_game(budget=3.0),
                n_periods=4,
                warm_start=False,
                solver_options=FAST,
            )
        assert plan.history == (("sim.solve", 3, "raise=FaultInjected"),)
        assert degraded.n_periods == clean.n_periods == 4
        # The stationary world re-solves to the same policy each period,
        # so serving period 2's policy in period 3 changes nothing: the
        # degraded trajectory still matches the clean one bit-for-bit.
        assert degraded.records == clean.records

    def test_first_period_failure_still_raises(self):
        plan = FaultPlan([FaultRule("sim.solve", nth=1)])
        with faults.active_plan(plan):
            with pytest.raises(FaultInjected):
                simulate(
                    make_tiny_game(budget=3.0),
                    n_periods=2,
                    warm_start=False,
                    solver_options=FAST,
                )


class TestChaosDeterminism:
    def test_equal_plans_replay_bit_for_bit(self, chaos_seed):
        # Probabilistic scipy faults over a real ISHM solve: the same
        # plan seed must inject the same failures at the same call
        # indices and land on the same final result, twice.
        def run(plan: FaultPlan):
            with faults.active_plan(plan):
                with AuditEngine(make_tiny_game(budget=3.0)) as engine:
                    return engine.solve("ishm", step_size=0.5)

        plan = FaultPlan(
            [FaultRule("solvers.lp.scipy", probability=0.3)],
            seed=chaos_seed,
        )
        first = run(plan)
        first_history = plan.history
        assert first_history  # chaos actually happened
        plan.reset()
        second = run(plan)
        assert plan.history == first_history
        assert first.objective == second.objective
        assert np.array_equal(
            first.policy.probabilities, second.policy.probabilities
        )
        assert np.array_equal(
            first.policy.thresholds, second.policy.thresholds
        )
