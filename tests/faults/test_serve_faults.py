"""Drift-while-serving under injected re-solve failure.

The acceptance scenario: with the ``serve.resolve`` point failing 100%
of the time, the service keeps answering ``/score`` from the last
published policy, the circuit breaker opens (visible in ``/status``
and ``/metrics``), and once the faults clear a half-open probe
re-solve publishes a fresh version and re-closes the breaker.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import faults
from repro.datasets import syn_a
from repro.faults import FaultPlan, FaultRule
from repro.serve import AuditService, StdlibApp

#: Cheap-but-real solver settings (mirrors the serve-layer suite).
FAST = {
    "solver": "ishm",
    "solver_options": {"step_size": 0.5},
    "estimator": "rolling-empirical",
    "estimator_options": {"window": 8, "min_periods": 2},
}

#: An alert stream far from Syn A's published model (drift >= 0.2).
DRIFTED = [[40, 12, 48, 12]] * 4


@pytest.fixture(scope="session")
def serve_game():
    return syn_a(budget=2)


@pytest.fixture()
def make_service(serve_game):
    def factory(**overrides) -> AuditService:
        return AuditService(serve_game, **{**FAST, **overrides})

    return factory


async def _wait_until(predicate, timeout: float = 30.0) -> None:
    async with asyncio.timeout(timeout):
        while not predicate():
            await asyncio.sleep(0.01)


class TestDriftWhileServing:
    def test_sustained_failure_serves_stale_policy(self, make_service):
        """100% re-solve failure: /score stays on the last-good policy."""

        async def main():
            service = make_service(
                drift_threshold=0.2,
                resolve_attempts=1,
                breaker_threshold=1,
                breaker_reset_seconds=60.0,
            )
            async with service:
                old = service.active()
                plan = FaultPlan([FaultRule("serve.resolve")])
                with faults.active_plan(plan):
                    payload = service.ingest(DRIFTED)
                    assert payload["resolve_scheduled"] is True
                    # The worker picks the request up, every attempt
                    # dies at the injection point, the breaker records
                    # the failure — and the worker itself survives.
                    await _wait_until(
                        lambda: service.resolve_failures >= 1
                    )
                    assert plan.calls("serve.resolve") >= 1

                    # Stale-but-valid serving: same version as before.
                    scored = service.score([[3, 1, 4, 1]])
                    assert scored["policy_version"] == old.version
                    assert scored["fingerprint"] == old.fingerprint

                    # The breaker is open and both reports agree.
                    assert service.breaker_state == "open"
                    assert service.status()["breaker_state"] == "open"
                    status, body = await StdlibApp(service).handle(
                        "GET", "/metrics"
                    )
                    assert status == 200
                    assert "repro_serve_breaker_state 1" in body
                    assert "repro_serve_breaker_opens_total 1" in body

                    # While open, even a manual re-solve is skipped and
                    # answered with the stale policy instead of erroring.
                    calls_before = plan.calls("serve.resolve")
                    stale = await service.resolve_now()
                    assert stale.version == old.version
                    assert plan.calls("serve.resolve") == calls_before
                    assert (
                        service.metrics.counter_total(
                            "repro_serve_resolves_skipped_total"
                        )
                        >= 1
                    )

        asyncio.run(main())

    def test_recovery_recloses_breaker_and_publishes(self, make_service):
        """After faults clear, the half-open probe republishes."""

        async def main():
            service = make_service(
                drift_threshold=0.2,
                auto_resolve=False,
                resolve_attempts=1,
                breaker_threshold=1,
                breaker_reset_seconds=0.0,
            )
            async with service:
                old = service.active()
                service.ingest(DRIFTED)  # drifted estimator, no worker
                with faults.active_plan(
                    FaultPlan([FaultRule("serve.resolve")])
                ):
                    stale = await service.resolve_now()
                    assert stale.version == old.version
                    assert service.breaker_state == "open"
                # Faults cleared + zero cooldown: the next re-solve is
                # the half-open probe, succeeds, and closes the breaker.
                recovered = await service.resolve_now()
                assert service.breaker_state == "closed"
                assert (
                    service.metrics.get_gauge("repro_serve_breaker_state")
                    == 0
                )
                # Versions count per fingerprint, so the proof of the
                # republish is the new model fingerprint now serving.
                assert recovered.fingerprint != old.fingerprint
                scored = service.score([[3, 1, 4, 1]])
                assert scored["fingerprint"] == recovered.fingerprint

        asyncio.run(main())

    def test_transient_failure_retries_then_publishes(self, make_service):
        """A one-off failure is absorbed by the retry policy."""

        async def main():
            service = make_service(
                auto_resolve=False,
                resolve_attempts=3,
                resolve_backoff_seconds=0.0,
            )
            async with service:
                old = service.active()
                service.ingest(DRIFTED)
                # Point call 1 (initial solve) ran before the plan was
                # armed, so nth=1 hits exactly the first retry attempt.
                plan = FaultPlan([FaultRule("serve.resolve", nth=1)])
                with faults.active_plan(plan):
                    published = await service.resolve_now()
                assert plan.calls("serve.resolve") == 2
                assert published.fingerprint != old.fingerprint
                assert service.resolve_retries == 1
                assert service.resolve_failures == 0
                assert service.breaker_state == "closed"

        asyncio.run(main())

    def test_slow_resolve_hits_deadline_and_degrades(self, make_service):
        """Per-attempt deadline: a hung solve degrades to stale serving."""

        async def main():
            # The deadline also governs the initial solve (~0.2s), so
            # it is set well above that and well below the fault lag.
            service = make_service(
                auto_resolve=False,
                resolve_attempts=1,
                resolve_timeout_seconds=1.0,
                breaker_threshold=1,
            )
            async with service:
                old = service.active()
                service.ingest(DRIFTED)
                plan = FaultPlan(
                    [FaultRule("serve.resolve", raises=None, latency=2.0)]
                )
                with faults.active_plan(plan):
                    stale = await service.resolve_now()
                assert stale.version == old.version
                assert (
                    service.metrics.counter_total(
                        "repro_serve_resolve_timeouts_total"
                    )
                    == 1
                )
                assert service.breaker_state == "open"

        asyncio.run(main())
