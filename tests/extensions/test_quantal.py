"""Quantal-response attacker extension."""

import numpy as np
import pytest

from repro.core import AuditPolicy, Ordering
from repro.extensions import (
    evaluate_quantal,
    quantal_response_distribution,
    rationality_sweep,
)
from repro.solvers import EnumerationSolver
from tests.conftest import make_tiny_game


class TestChoiceDistribution:
    def test_zero_rationality_is_uniform(self):
        eu = np.array([[1.0, -5.0]])
        dist = quantal_response_distribution(
            eu, 0.0, include_refrain=True
        )
        assert np.allclose(dist, 1 / 3)

    def test_high_rationality_concentrates(self):
        eu = np.array([[1.0, -5.0]])
        dist = quantal_response_distribution(
            eu, 100.0, include_refrain=False
        )
        assert dist[0, 0] > 0.999
        assert dist[0, -1] == 0.0  # refrain excluded

    def test_refrain_column_present(self):
        eu = np.array([[-10.0, -10.0]])
        dist = quantal_response_distribution(
            eu, 10.0, include_refrain=True
        )
        assert dist[0, -1] > 0.99

    def test_rows_sum_to_one(self):
        eu = np.random.default_rng(0).normal(size=(4, 3))
        dist = quantal_response_distribution(eu, 1.7, True)
        assert np.allclose(dist.sum(axis=1), 1.0)

    def test_rejects_negative_rationality(self):
        with pytest.raises(ValueError):
            quantal_response_distribution(np.zeros((1, 1)), -1.0, True)


class TestEvaluateQuantal:
    def test_converges_to_best_response(
        self, syn_a_game, syn_a_scenarios
    ):
        solution = EnumerationSolver(
            syn_a_game, syn_a_scenarios
        ).solve(np.array([3.0, 3.0, 3.0, 3.0]))
        quantal = evaluate_quantal(
            syn_a_game, solution.policy, syn_a_scenarios,
            rationality=200.0,
        )
        assert quantal.auditor_loss == pytest.approx(
            solution.objective, abs=0.01
        )

    def test_best_response_upper_bounds_quantal(
        self, syn_a_game, syn_a_scenarios
    ):
        # A rational attacker extracts at least as much as any
        # quantal one (max >= softmax average).
        solution = EnumerationSolver(
            syn_a_game, syn_a_scenarios
        ).solve(np.array([3.0, 3.0, 3.0, 3.0]))
        for lam in (0.0, 1.0, 10.0):
            quantal = evaluate_quantal(
                syn_a_game, solution.policy, syn_a_scenarios, lam
            )
            assert quantal.auditor_loss <= solution.objective + 1e-9

    def test_refrain_rate_with_deterrence(self, tiny_scenarios):
        game = make_tiny_game(budget=50.0, attackers_can_refrain=True)
        policy = AuditPolicy.pure(
            Ordering((0, 1)),
            game.threshold_upper_bounds().astype(float),
        )
        quantal = evaluate_quantal(
            game, policy, tiny_scenarios, rationality=50.0
        )
        assert 0.0 <= quantal.refrain_rate <= 1.0

    def test_sweep_is_monotone_in_rationality(
        self, syn_a_game, syn_a_scenarios
    ):
        solution = EnumerationSolver(
            syn_a_game, syn_a_scenarios
        ).solve(np.array([3.0, 3.0, 3.0, 3.0]))
        sweep = rationality_sweep(
            syn_a_game, solution.policy, syn_a_scenarios,
            rationalities=(0.0, 0.5, 2.0, 10.0),
        )
        losses = [q.auditor_loss for q in sweep]
        # More rational attackers extract (weakly) more.
        assert all(b >= a - 1e-9 for a, b in zip(losses, losses[1:], strict=False))
