"""Sensitivity analysis extension."""

import numpy as np
import pytest

from repro.extensions import scale_payoffs, sensitivity_sweep
from tests.conftest import make_tiny_game


class TestScalePayoffs:
    def test_penalty_scaling(self, tiny_game):
        scaled = scale_payoffs(tiny_game, "penalty", 2.0)
        assert np.allclose(
            scaled.payoffs.penalty, 2.0 * tiny_game.payoffs.penalty
        )
        # Original untouched.
        assert np.all(tiny_game.payoffs.penalty == 5.0)

    def test_benefit_scaling(self, tiny_game):
        scaled = scale_payoffs(tiny_game, "benefit", 0.5)
        assert np.allclose(
            scaled.payoffs.benefit, 0.5 * tiny_game.payoffs.benefit
        )

    def test_prior_clipped_to_one(self, tiny_game):
        scaled = scale_payoffs(tiny_game, "attack_prior", 10.0)
        assert np.all(scaled.payoffs.attack_prior <= 1.0)

    def test_rejects_unknown_component(self, tiny_game):
        with pytest.raises(ValueError):
            scale_payoffs(tiny_game, "magic", 1.0)

    def test_rejects_negative_scale(self, tiny_game):
        with pytest.raises(ValueError):
            scale_payoffs(tiny_game, "penalty", -1.0)


class TestSensitivitySweep:
    def test_higher_penalty_weakly_helps_auditor(self):
        game = make_tiny_game(budget=3.0)
        rows = sensitivity_sweep(
            game, "penalty", scales=(0.5, 1.0, 2.0), step_size=0.5,
            n_scenarios=200,
        )
        objectives = [row.objective for row in rows]
        assert objectives[0] >= objectives[-1] - 1e-6

    def test_higher_benefit_weakly_hurts_auditor(self):
        game = make_tiny_game(budget=3.0)
        rows = sensitivity_sweep(
            game, "benefit", scales=(0.5, 2.0), step_size=0.5,
            n_scenarios=200,
        )
        assert rows[0].objective <= rows[1].objective + 1e-6

    def test_custom_solver_hook(self):
        game = make_tiny_game(budget=3.0)
        calls = []

        class FakeResult:
            objective = 1.0
            thresholds = np.zeros(2)

        def fake_solve(g):
            calls.append(g)
            return FakeResult()

        rows = sensitivity_sweep(
            game, "penalty", scales=(1.0, 2.0), solve=fake_solve
        )
        assert len(calls) == 2
        assert all(row.objective == 1.0 for row in rows)
        assert all(row.n_deterred == -1 for row in rows)
