"""General-sum extension: evaluation and single-adversary Stackelberg."""

import numpy as np
import pytest

from repro.core import AuditPolicy, Ordering
from repro.extensions import (
    AuditorLossModel,
    evaluate_general_sum,
    solve_single_adversary,
)
from repro.solvers import EnumerationSolver


@pytest.fixture()
def loss_model(syn_a_game):
    return AuditorLossModel.proportional(syn_a_game, damage_factor=2.0)


class TestAuditorLossModel:
    def test_proportional_scaling(self, syn_a_game, loss_model):
        assert np.allclose(
            loss_model.undetected_loss, 2.0 * syn_a_game.payoffs.benefit
        )
        assert np.all(loss_model.detected_loss == 0.0)

    def test_expected_loss_interpolates(self, loss_model):
        detection = np.full_like(loss_model.undetected_loss, 0.25)
        expected = loss_model.expected_loss_matrix(detection)
        assert np.allclose(expected, 0.75 * loss_model.undetected_loss)


class TestEvaluateGeneralSum:
    def test_zero_detection_pays_full_damage(
        self, syn_a_game, syn_a_scenarios, loss_model
    ):
        policy = AuditPolicy.pure(
            Ordering((0, 1, 2, 3)), [0.0, 0.0, 0.0, 0.0]
        )
        outcome = evaluate_general_sum(
            syn_a_game, loss_model, policy, syn_a_scenarios
        )
        # Nothing is audited: every adversary attacks its best victim
        # and the auditor pays 2x that benefit.
        best_benefit = syn_a_game.payoffs.benefit.max(axis=1)
        assert outcome.auditor_loss == pytest.approx(
            float((2.0 * best_benefit).sum()), abs=1e-9
        )

    def test_detection_reduces_loss(
        self, syn_a_game, syn_a_scenarios, loss_model
    ):
        none = AuditPolicy.pure(
            Ordering((0, 1, 2, 3)), [0.0, 0.0, 0.0, 0.0]
        )
        solution = EnumerationSolver(
            syn_a_game, syn_a_scenarios
        ).solve(np.array([3.0, 3.0, 3.0, 3.0]))
        unaudited = evaluate_general_sum(
            syn_a_game, loss_model, none, syn_a_scenarios
        )
        audited = evaluate_general_sum(
            syn_a_game, loss_model, solution.policy, syn_a_scenarios
        )
        assert audited.auditor_loss < unaudited.auditor_loss

    def test_victims_recorded(self, syn_a_game, syn_a_scenarios,
                              loss_model):
        policy = AuditPolicy.pure(
            Ordering((0, 1, 2, 3)), [3.0, 3.0, 3.0, 3.0]
        )
        outcome = evaluate_general_sum(
            syn_a_game, loss_model, policy, syn_a_scenarios
        )
        assert len(outcome.attacked_victims) == 5


class TestSingleAdversary:
    def test_beats_zero_sum_policy_for_that_adversary(
        self, syn_a_game, syn_a_scenarios, loss_model
    ):
        b = np.array([3.0, 3.0, 3.0, 3.0])
        zero_sum = EnumerationSolver(
            syn_a_game, syn_a_scenarios
        ).solve(b)
        _, stackelberg_loss = solve_single_adversary(
            syn_a_game, loss_model, b, syn_a_scenarios, adversary=0
        )
        # Evaluate the zero-sum policy under the general-sum loss for
        # adversary 0 alone.
        outcome = evaluate_general_sum(
            syn_a_game, loss_model, zero_sum.policy, syn_a_scenarios
        )
        response = outcome.attacked_victims[0]
        detection = syn_a_game.attack_map.detection_probability(
            syn_a_game.evaluate(
                zero_sum.policy, syn_a_scenarios
            ).mixed_pal
        )
        loss_matrix = loss_model.expected_loss_matrix(detection)
        zero_sum_loss_e0 = (
            0.0 if response < 0 else float(loss_matrix[0, response])
        )
        assert stackelberg_loss <= zero_sum_loss_e0 + 1e-6

    def test_policy_is_valid(self, syn_a_game, syn_a_scenarios,
                             loss_model):
        policy, loss = solve_single_adversary(
            syn_a_game, loss_model, np.array([2.0, 2.0, 2.0, 2.0]),
            syn_a_scenarios, adversary=1,
        )
        assert np.isclose(policy.probabilities.sum(), 1.0)
        assert loss >= 0.0
