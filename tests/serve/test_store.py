"""PolicyStore semantics: fingerprints, versioning, atomic republish."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.datasets import syn_a
from repro.distributions import (
    DiscretizedGaussian,
    EmpiricalCounts,
    JointCountModel,
)
from repro.serve import PolicyStore, model_fingerprint
from repro.serve.store import make_key


class TestFingerprint:
    def test_equal_content_shares_fingerprint(self):
        # Two separately built model objects with identical content must
        # land on the same store key (a warm re-publish replaces, not
        # forks).
        a = syn_a(budget=2).counts
        b = syn_a(budget=10).counts  # budget is not part of the model
        assert a is not b
        assert model_fingerprint(a) == model_fingerprint(b)

    def test_distinct_models_do_not_collide(self):
        base = JointCountModel(
            [
                DiscretizedGaussian(mean=3.0, std=1.0),
                DiscretizedGaussian(mean=2.0, std=1.0),
            ]
        )
        shifted = JointCountModel(
            [
                DiscretizedGaussian(mean=3.5, std=1.0),
                DiscretizedGaussian(mean=2.0, std=1.0),
            ]
        )
        assert model_fingerprint(base) != model_fingerprint(shifted)

    def test_distribution_family_is_hashed(self):
        # Same support and (nearly) same pmf through a different class
        # still separates: the class name participates in the hash.
        gaussian = DiscretizedGaussian(mean=3.0, std=1.0)
        empirical = EmpiricalCounts.from_samples(
            np.repeat(gaussian.support(), 1)
        )
        a = JointCountModel([gaussian])
        b = JointCountModel([empirical])
        assert model_fingerprint(a) != model_fingerprint(b)

    def test_make_key_includes_budget(self):
        model = syn_a(budget=2).counts
        assert make_key(model, 2) != make_key(model, 10)


class TestVersioning:
    def test_first_publish_is_version_one(self, solve_result):
        store = PolicyStore()
        record = store.publish("fp", 2.0, solve_result)
        assert record.version == 1
        assert store.current(("fp", 2.0)) is record
        assert len(store) == 1

    def test_republish_bumps_version_per_key(self, solve_result):
        store = PolicyStore()
        store.publish("fp", 2.0, solve_result)
        second = store.publish("fp", 2.0, solve_result)
        other = store.publish("other", 2.0, solve_result)
        assert second.version == 2
        assert other.version == 1  # versions are per key
        assert store.versions(("fp", 2.0)) == (1, 2)

    def test_stale_version_reads(self, solve_result):
        store = PolicyStore(keep_versions=3)
        records = [
            store.publish("fp", 2.0, solve_result, meta={"i": i})
            for i in range(5)
        ]
        # Current is the newest; versions 3..5 are retained, 1..2 aged
        # out of the keep_versions=3 window.
        assert store.current(("fp", 2.0)) is records[-1]
        assert store.versions(("fp", 2.0)) == (3, 4, 5)
        assert store.get(("fp", 2.0), 3).meta["i"] == 2
        with pytest.raises(KeyError, match="not retained"):
            store.get(("fp", 2.0), 1)
        with pytest.raises(KeyError, match="no policy published"):
            store.get(("nope", 2.0), 1)

    def test_meta_is_read_only(self, solve_result):
        record = PolicyStore().publish(
            "fp", 2.0, solve_result, meta={"reason": "drift"}
        )
        with pytest.raises(TypeError):
            record.meta["reason"] = "tampered"  # type: ignore[index]

    def test_keep_versions_validated(self):
        with pytest.raises(ValueError, match="keep_versions"):
            PolicyStore(keep_versions=0)

    def test_publish_for_uses_content_key(self, solve_result):
        store = PolicyStore()
        model = syn_a(budget=2).counts
        record = store.publish_for(model, 2.0, solve_result)
        assert record.fingerprint == model_fingerprint(model)
        assert store.current(make_key(model, 2.0)) is record


class TestRepublishAtomicity:
    def test_concurrent_readers_never_see_a_mixture(self, solve_result):
        """Readers racing a republish storm observe only complete records.

        Each publish stamps ``meta["i"] == version - 1``; a torn swap
        (new version with old meta, or vice versa) would break that
        invariant for some reader.  Versions must also be monotone per
        reader — the current pointer never moves backwards.
        """
        store = PolicyStore(keep_versions=4)
        key = ("fp", 2.0)
        n_publishes = 300
        store.publish("fp", 2.0, solve_result, meta={"i": 0})
        stop = threading.Event()
        failures: list[str] = []

        def reader() -> None:
            last_version = 0
            while not stop.is_set():
                record = store.current(key)
                if record.version != record.meta["i"] + 1:
                    failures.append(
                        f"torn record: version={record.version} "
                        f"meta={dict(record.meta)}"
                    )
                if record.version < last_version:
                    failures.append(
                        f"version moved backwards: {last_version} -> "
                        f"{record.version}"
                    )
                last_version = record.version
                # Retained stale versions stay internally consistent too.
                for version in store.versions(key)[:-1]:
                    try:
                        stale = store.get(key, version)
                    except KeyError:
                        continue  # aged out between list and read
                    if stale.version != stale.meta["i"] + 1:
                        failures.append(
                            f"torn stale record at version {version}"
                        )

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for i in range(1, n_publishes):
            store.publish("fp", 2.0, solve_result, meta={"i": i})
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures, failures[:5]
        assert store.current(key).version == n_publishes
        assert store.publishes == n_publishes
