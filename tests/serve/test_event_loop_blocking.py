"""Event-loop responsiveness of the serve layer (the RPL201 contract).

The serve layer's rule — enforced statically by the blocking-in-async
lint rule — is that solves and engine shutdowns run on worker threads,
never on the event loop.  These tests verify the property dynamically:
a heartbeat task keeps ticking while the slow work runs, and the
maximum observed gap between ticks stays far below the injected delay.
If someone moves a solve (or an ``engine.close()``) back onto the loop,
the heartbeat stalls for the full delay and the bound fails.
"""

from __future__ import annotations

import asyncio
import time

from repro.engine import AuditEngine

#: Injected delay for the blocking work (seconds, on a worker thread).
BLOCKING_DELAY = 0.4
#: Maximum tolerated gap between heartbeat ticks while it runs.  Far
#: above scheduler jitter, far below BLOCKING_DELAY: only the work
#: itself landing on the loop can break it.
MAX_TICK_GAP = 0.25


class _Heartbeat:
    """Measure event-loop tick gaps while other coroutines run."""

    def __init__(self) -> None:
        self.max_gap = 0.0
        self._stop = asyncio.Event()
        self._task: asyncio.Task | None = None

    async def _run(self) -> None:
        prev = time.monotonic()
        while not self._stop.is_set():
            await asyncio.sleep(0.01)
            now = time.monotonic()
            self.max_gap = max(self.max_gap, now - prev)
            prev = now

    async def __aenter__(self) -> "_Heartbeat":
        self._task = asyncio.create_task(self._run())
        # One spin so the first measured gap starts inside the window.
        await asyncio.sleep(0)
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self._stop.set()
        assert self._task is not None
        await self._task


class TestResolvePathNeverBlocksLoop:
    def test_loop_ticks_through_a_slow_solve(
        self, make_service, monkeypatch
    ):
        async def main():
            async with make_service() as service:
                real = type(service)._solve_blocking

                def slow_solve(self, *args, **kwargs):
                    time.sleep(BLOCKING_DELAY)
                    return real(self, *args, **kwargs)

                monkeypatch.setattr(
                    type(service), "_solve_blocking", slow_solve
                )
                # Drop the memo so the resolve really re-solves.
                service._solve_memo.clear()

                async with _Heartbeat() as heartbeat:
                    published = await service.resolve_now()

                assert published.meta["reason"] == "manual"
                assert heartbeat.max_gap < MAX_TICK_GAP, (
                    f"event loop stalled {heartbeat.max_gap:.3f}s during "
                    "resolve; solves must stay on worker threads"
                )

        asyncio.run(main())

    def test_loop_ticks_through_engine_shutdown(
        self, make_service, monkeypatch
    ):
        async def main():
            service = make_service()
            await service.start()
            assert service._engines  # the initial solve built one

            real_close = AuditEngine.close

            def slow_close(self):
                time.sleep(BLOCKING_DELAY)
                real_close(self)

            monkeypatch.setattr(AuditEngine, "close", slow_close)

            async with _Heartbeat() as heartbeat:
                await service.stop()

            assert not service.worker_running
            assert heartbeat.max_gap < MAX_TICK_GAP, (
                f"event loop stalled {heartbeat.max_gap:.3f}s during "
                "stop(); engine shutdown must run via asyncio.to_thread"
            )

        asyncio.run(main())
