"""One route contract, every backend.

The same request/response assertions run against each available app:

* ``inproc`` — :class:`StdlibApp.handle`, the dispatch layer itself;
* ``socket`` — :class:`StdlibApp` behind a real asyncio socket server,
  exercising the HTTP/1.1 parser;
* ``fastapi`` — the FastAPI adapter driven through its ASGI interface
  (skipped when the optional dependency is not installed).

Because both apps funnel through :func:`repro.serve.http.dispatch`, a
contract drift between them is structurally impossible — these tests
pin the contract itself.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import (
    ROUTES,
    StdlibApp,
    have_fastapi,
    make_fastapi_app,
)
from repro.engine.result import SolveResult

BACKENDS = [
    "inproc",
    "socket",
    pytest.param(
        "fastapi",
        marks=pytest.mark.skipif(
            not have_fastapi(), reason="fastapi not installed"
        ),
    ),
]


async def _socket_request(host, port, method, path, body):
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n".encode() + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, tail = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(tail)


async def _asgi_request(app, method, path, body):
    payload = b"" if body is None else json.dumps(body).encode()
    scope = {
        "type": "http",
        "asgi": {"version": "3.0", "spec_version": "2.3"},
        "http_version": "1.1",
        "method": method,
        "scheme": "http",
        "path": path,
        "raw_path": path.encode(),
        "query_string": b"",
        "root_path": "",
        "headers": [
            (b"content-type", b"application/json"),
            (b"content-length", str(len(payload)).encode()),
        ],
        "server": ("testserver", 80),
        "client": ("testclient", 123),
    }
    messages = []

    async def receive():
        return {
            "type": "http.request",
            "body": payload,
            "more_body": False,
        }

    async def send(message):
        messages.append(message)

    await app(scope, receive, send)
    status = next(
        m["status"] for m in messages
        if m["type"] == "http.response.start"
    )
    raw = b"".join(
        m.get("body", b"") for m in messages
        if m["type"] == "http.response.body"
    )
    return status, json.loads(raw) if raw else None


class _Client:
    """One request interface over whichever backend is under test."""

    def __init__(self, backend, service, server=None, fastapi_app=None):
        self.backend = backend
        self.service = service
        self.server = server
        self.fastapi_app = fastapi_app

    async def request(self, method, path, body=None):
        if self.backend == "inproc":
            return await StdlibApp(self.service).handle(
                method, path, body
            )
        if self.backend == "socket":
            host, port = self.server.sockets[0].getsockname()[:2]
            return await _socket_request(host, port, method, path, body)
        return await _asgi_request(self.fastapi_app, method, path, body)


def contract_test(test_body):
    """Run ``test_body(client)`` against one started service + backend."""

    def wrapper(self, backend, make_service):
        async def main():
            async with make_service(drift_threshold=0.2) as service:
                server = None
                fastapi_app = None
                if backend == "socket":
                    app = StdlibApp(service)
                    server = await asyncio.start_server(
                        app._client_connected, "127.0.0.1", 0
                    )
                elif backend == "fastapi":
                    fastapi_app = make_fastapi_app(service)
                try:
                    await test_body(
                        self,
                        _Client(backend, service, server, fastapi_app),
                    )
                finally:
                    if server is not None:
                        server.close()
                        await server.wait_closed()

        asyncio.run(main())

    return wrapper


@pytest.mark.parametrize("backend", BACKENDS)
class TestRouteContract:
    @contract_test
    async def test_healthz(self, client):
        status, payload = await client.request("GET", "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "policy_version": 1}

    @contract_test
    async def test_status(self, client):
        status, payload = await client.request("GET", "/status")
        assert status == 200
        assert payload["resolves_completed"] == 1
        assert payload["worker_running"] is True
        assert payload["policy"]["version"] == 1

    @contract_test
    async def test_policy_round_trips(self, client):
        status, payload = await client.request("GET", "/policy")
        assert status == 200
        assert payload["version"] == 1
        restored = SolveResult.from_dict(payload["result"])
        active = client.service.active()
        assert restored.objective == active.result.objective
        assert (
            restored.policy.thresholds.tolist()
            == active.result.policy.thresholds.tolist()
        )

    @contract_test
    async def test_policy_version_reads(self, client):
        status, payload = await client.request("GET", "/policy/1")
        assert status == 200
        assert payload["version"] == 1
        status, payload = await client.request("GET", "/policy/99")
        assert status == 404
        assert "not retained" in payload["error"]
        status, payload = await client.request("GET", "/policy/abc")
        assert status == 400
        assert "integer" in payload["error"]

    @contract_test
    async def test_score(self, client):
        status, payload = await client.request(
            "POST", "/score", {"alerts": [[3, 1, 4, 1]]}
        )
        assert status == 200
        assert payload["policy_version"] == 1
        assert payload["rows"] == 1
        direct = client.service.score([[3, 1, 4, 1]])
        assert payload["detection"] == direct["detection"]
        assert payload["spent"] == direct["spent"]

    @contract_test
    async def test_score_validation(self, client):
        status, payload = await client.request(
            "POST", "/score", {"alerts": [[1, 2]]}
        )
        assert status == 400
        assert "shape" in payload["error"]
        status, payload = await client.request("POST", "/score", {})
        assert status == 400
        assert "'alerts'" in payload["error"]

    @contract_test
    async def test_alerts(self, client):
        status, payload = await client.request(
            "POST", "/alerts", {"counts": [[3, 1, 4, 1], [2, 1, 3, 1]]}
        )
        assert status == 200
        assert payload["observed"] == 2
        assert payload["events_ingested"] == 2
        assert "drift" in payload
        status, payload = await client.request(
            "POST", "/alerts", {"counts": [[-1, 1, 1, 1]]}
        )
        assert status == 400

    @contract_test
    async def test_resolve(self, client):
        status, payload = await client.request("POST", "/resolve")
        assert status == 200
        assert payload["version"] == 2
        assert payload["meta"]["reason"] == "manual"

    @contract_test
    async def test_unknown_path_is_404(self, client):
        status, payload = await client.request("GET", "/nope")
        assert status == 404
        assert "no route" in payload["error"]

    @contract_test
    async def test_wrong_method_is_405(self, client):
        status, payload = await client.request("POST", "/healthz")
        assert status == 405
        assert "GET" in payload["error"]
        status, payload = await client.request("GET", "/score")
        assert status == 405
        assert "POST" in payload["error"]


class TestStdlibParser:
    """Socket-level behaviors specific to the stdlib HTTP parser."""

    def _serve(self, make_service):
        class _Ctx:
            async def __aenter__(ctx):
                ctx.service = make_service()
                await ctx.service.start()
                app = StdlibApp(ctx.service)
                ctx.server = await asyncio.start_server(
                    app._client_connected, "127.0.0.1", 0
                )
                return ctx

            async def __aexit__(ctx, *exc):
                ctx.server.close()
                await ctx.server.wait_closed()
                await ctx.service.stop()

            @property
            def address(ctx):
                return ctx.server.sockets[0].getsockname()[:2]

        return _Ctx()

    def test_invalid_json_body_is_400(self, make_service):
        async def main():
            async with self._serve(make_service) as ctx:
                host, port = ctx.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"POST /score HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 9\r\n\r\nnot json!"
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                assert b"400" in raw.split(b"\r\n")[0]
                assert b"invalid JSON" in raw

        asyncio.run(main())

    def test_malformed_request_line_is_400(self, make_service):
        async def main():
            async with self._serve(make_service) as ctx:
                host, port = ctx.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"garbage\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                assert b"400" in raw.split(b"\r\n")[0]

        asyncio.run(main())

    def test_oversized_body_is_413(self, make_service, monkeypatch):
        monkeypatch.setattr(StdlibApp, "MAX_BODY", 16)

        async def main():
            async with self._serve(make_service) as ctx:
                host, port = ctx.address
                status, payload = await _socket_request(
                    host, port, "POST", "/score",
                    {"alerts": [[1, 1, 1, 1]] * 10},
                )
                assert status == 413
                assert "exceeds" in payload["error"]

        asyncio.run(main())


def test_route_table_is_complete():
    patterns = {(r.method, r.pattern) for r in ROUTES}
    assert patterns == {
        ("GET", "/healthz"),
        ("GET", "/status"),
        ("GET", "/metrics"),
        ("GET", "/policy"),
        ("GET", "/policy/{version}"),
        ("POST", "/score"),
        ("POST", "/alerts"),
        ("POST", "/resolve"),
    }


def test_fastapi_adapter_raises_without_dependency():
    if have_fastapi():
        pytest.skip("fastapi installed; the ImportError path is inert")
    with pytest.raises(ImportError, match=r"\[serve\]"):
        make_fastapi_app(object())
