"""AuditService behavior: lifecycle, drift-triggered re-solves, config."""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.serve import AuditService, ServeConfig, model_fingerprint


class TestLifecycle:
    def test_start_publishes_initial_policy(self, serve_game, make_service):
        async def main():
            async with make_service() as service:
                active = service.active()
                assert active.version == 1
                assert active.fingerprint == model_fingerprint(
                    serve_game.counts
                )
                assert active.meta["reason"] == "initial"
                assert service.worker_running

        asyncio.run(main())

    def test_score_before_start_raises(self, make_service):
        service = make_service()
        with pytest.raises(RuntimeError, match="no policy published"):
            service.score([[1, 1, 1, 1]])
        with pytest.raises(RuntimeError, match="no policy published"):
            service.ingest([[1, 1, 1, 1]])

    def test_stop_halts_worker(self, make_service):
        async def main():
            service = make_service()
            await service.start()
            assert service.worker_running
            await service.stop()
            assert not service.worker_running

        asyncio.run(main())

    def test_bad_plugin_names_fail_fast(self, serve_game):
        with pytest.raises(KeyError):
            AuditService(serve_game, solver="no-such-solver")
        with pytest.raises(KeyError):
            AuditService(serve_game, estimator="no-such-estimator")
        with pytest.raises(ValueError, match="no option"):
            AuditService(
                serve_game,
                solver="ishm",
                solver_options={"no_such_option": 1},
            )


class TestScoring:
    def test_score_names_the_served_version(self, serve_game, make_service):
        async def main():
            async with make_service() as service:
                payload = service.score([[3, 1, 4, 1], [2, 2, 2, 2]])
                assert payload["policy_version"] == 1
                assert payload["rows"] == 2
                assert len(payload["detection"]) == 2
                assert len(payload["detection"][0]) == serve_game.n_types
                assert service.rows_scored == 2

        asyncio.run(main())

    def test_score_enforces_max_batch(self, make_service):
        async def main():
            async with make_service(max_batch=2) as service:
                with pytest.raises(ValueError, match="max_batch"):
                    service.score([[1, 1, 1, 1]] * 3)
                with pytest.raises(ValueError, match="max_batch"):
                    service.ingest([[1, 1, 1, 1]] * 3)

        asyncio.run(main())


class TestDrift:
    def test_stationary_ingest_schedules_nothing(
        self, serve_game, make_service
    ):
        async def main():
            async with make_service(drift_threshold=10.0) as service:
                means = [m.mean() for m in serve_game.counts.marginals]
                rows = [[int(round(m)) for m in means]] * 4
                payload = service.ingest(rows)
                assert payload["resolve_scheduled"] is False
                assert service.resolves_scheduled == 0

        asyncio.run(main())

    def test_auto_resolve_off_never_schedules(self, make_service):
        async def main():
            async with make_service(
                drift_threshold=0.01, auto_resolve=False
            ) as service:
                payload = service.ingest([[50, 50, 50, 50]] * 4)
                assert payload["drift"] > 0.01
                assert payload["resolve_scheduled"] is False

        asyncio.run(main())

    def test_ingest_validates_rows(self, make_service):
        async def main():
            async with make_service() as service:
                with pytest.raises(ValueError, match="shape"):
                    service.ingest([[1, 2]])
                with pytest.raises(
                    ValueError, match="finite and non-negative"
                ):
                    service.ingest([[-1, 1, 1, 1]])

        asyncio.run(main())

    def test_drift_resolve_publishes_while_old_version_serves(
        self, make_service
    ):
        """The ISSUE's acceptance scenario.

        Ingesting a drifted stream schedules a background re-solve; while
        that solve is (artificially) held in flight, ``/score`` keeps
        answering from the old published policy, and only after the
        publish does scoring report the new fingerprint.
        """

        async def main():
            async with make_service(drift_threshold=0.2) as service:
                old = service.active()
                release = threading.Event()
                solving = threading.Event()
                original = service._solve_blocking

                def gated(*args, **kwargs):
                    solving.set()
                    assert release.wait(timeout=30)
                    return original(*args, **kwargs)

                service._solve_blocking = gated

                payload = service.ingest([[40, 12, 48, 12]] * 4)
                assert payload["drift"] >= 0.2
                assert payload["resolve_scheduled"] is True

                # The worker picked the request up and is now solving.
                await asyncio.to_thread(solving.wait, 30)
                assert service.status()["resolve_pending"] is True

                # Mid-flight: scoring still answers from the old policy.
                mid = service.score([[3, 1, 4, 1]])
                assert mid["policy_version"] == old.version
                assert mid["fingerprint"] == old.fingerprint
                assert service.resolves_completed == 1  # initial only

                release.set()
                while service.resolves_completed < 2:
                    await asyncio.sleep(0.01)

                new = service.active()
                assert new.fingerprint != old.fingerprint
                assert new.meta["reason"] == "drift"
                assert new.meta["resolve_lag_seconds"] > 0
                after = service.score([[3, 1, 4, 1]])
                assert after["fingerprint"] == new.fingerprint
                # The old version stays readable from the store.
                stale = service.store.get(old.key, old.version)
                assert stale.fingerprint == old.fingerprint

        asyncio.run(main())

    def test_resolve_now_bumps_version_on_same_key(self, make_service):
        async def main():
            async with make_service() as service:
                old = service.active()
                published = await service.resolve_now()
                # No alerts ingested: the estimator still reports the
                # prior model, so the republish lands on the same key
                # with a bumped version — and the memoized engine result
                # makes it bitwise-identical.
                assert published.fingerprint == old.fingerprint
                assert published.version == old.version + 1
                assert published.result is old.result
                assert service.active() is published

        asyncio.run(main())

    def test_latest_pending_request_wins(self, make_service):
        async def main():
            async with make_service(drift_threshold=0.1) as service:
                release = threading.Event()
                original = service._solve_blocking

                def gated(*args, **kwargs):
                    assert release.wait(timeout=30)
                    return original(*args, **kwargs)

                service._solve_blocking = gated
                # Two drifting batches while no worker slot is free: the
                # second request supersedes the first.
                service.ingest([[30, 10, 30, 10]] * 2)
                service.ingest([[60, 20, 60, 20]] * 2)
                assert service.resolves_scheduled == 2
                final_model = service._estimator.model()
                release.set()
                while service.status()["resolve_pending"]:
                    await asyncio.sleep(0.01)
                assert service.active().fingerprint == model_fingerprint(
                    final_model
                )

        asyncio.run(main())


class TestWarmEngines:
    def test_same_model_reuses_memoized_result(self, make_service):
        async def main():
            async with make_service() as service:
                first = await service.resolve_now()
                second = await service.resolve_now()
                assert second.result is first.result
                with service._engines_lock:
                    assert len(service._engines) == 1

        asyncio.run(main())

    def test_engine_bound_is_enforced(self, make_service):
        async def main():
            async with make_service() as service:
                for scale in (10, 20, 30, 40, 50):
                    service.ingest([[scale, scale, scale, scale]] * 2)
                    await service.resolve_now()
                with service._engines_lock:
                    assert (
                        len(service._engines) <= AuditService.MAX_ENGINES
                    )

        asyncio.run(main())


class TestServeConfig:
    def test_from_pairs_coerces_and_routes(self):
        config = ServeConfig.from_pairs(
            {
                "drift_threshold": "0.25",
                "max_batch": "128",
                "auto_resolve": "false",
                "estimator.window": "14",
                "solver.step_size": "0.5",
            }
        )
        assert config.drift_threshold == 0.25
        assert config.max_batch == 128
        assert config.auto_resolve is False
        assert config.estimator_options == {"window": "14"}
        assert config.solver_options == {"step_size": "0.5"}

    def test_from_pairs_rejects_unknowns(self):
        with pytest.raises(ValueError, match="no option"):
            ServeConfig.from_pairs({"nope": "1"})
        with pytest.raises(ValueError, match="plugin scope"):
            ServeConfig.from_pairs({"adversary.rationality": "2"})
        with pytest.raises(ValueError, match="dotted options"):
            ServeConfig.from_pairs({"solver_options": "x"})
        with pytest.raises(ValueError, match="empty option"):
            ServeConfig.from_pairs({"estimator.": "1"})

    def test_validation(self):
        with pytest.raises(ValueError, match="drift_threshold"):
            ServeConfig(drift_threshold=-0.1)
        with pytest.raises(ValueError, match="max_batch"):
            ServeConfig(max_batch=0)

    def test_replace(self):
        config = ServeConfig().replace(drift_threshold=0.5)
        assert config.drift_threshold == 0.5
        assert config.solver == "ishm"

    def test_overrides_compose_with_config(self, serve_game):
        base = ServeConfig(drift_threshold=0.4)
        service = AuditService(serve_game, base, max_batch=16)
        assert service.config.drift_threshold == 0.4
        assert service.config.max_batch == 16


def test_status_payload_is_jsonable(make_service):
    async def main():
        async with make_service() as service:
            service.score([[1, 1, 1, 1]])
            service.ingest([[1, 1, 1, 1]])
            payload = service.status()
            round_tripped = json.loads(json.dumps(payload))
            assert round_tripped["score_requests"] == 1
            assert round_tripped["events_ingested"] == 1
            assert round_tripped["policy"]["version"] == 1
            assert round_tripped["worker_running"] is True

    asyncio.run(main())


def test_float_rows_are_accepted_as_counts(make_service):
    # Float rows coerce onto the estimators' int64 observation periods.
    async def main():
        async with make_service() as service:
            payload = service.ingest(np.array([[1.0, 2.0, 3.0, 4.0]]))
            assert payload["observed"] == 1

    asyncio.run(main())
