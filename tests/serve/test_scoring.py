"""PolicyScorer: request-time scoring vs the reference detection kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AlertType,
    AlertTypeSet,
    AttackTypeMap,
    AuditGame,
    PayoffModel,
)
from repro.core.detection import pal_for_ordering
from repro.core.policy import AuditPolicy, Ordering
from repro.distributions import ConstantCount, JointCountModel
from repro.serve import PolicyScorer


def constant_game(z0: int, z1: int, budget: float = 3.0) -> AuditGame:
    """2-type game whose scenario set is the single realization (z0, z1).

    Costs (1, 2) as in the shared tiny game; constant counts make the
    scenario set degenerate, so the reference kernel's expectation *is*
    the per-row score.
    """
    alert_types = AlertTypeSet(
        (
            AlertType("fast", audit_cost=1.0),
            AlertType("slow", audit_cost=2.0),
        )
    )
    counts = JointCountModel([ConstantCount(z0), ConstantCount(z1)])
    type_matrix = np.array([[0, 1, -1], [1, 0, 0]])
    payoffs = PayoffModel.create(
        n_adversaries=2,
        n_victims=3,
        benefit=np.where(
            type_matrix == 0, 4.0, np.where(type_matrix == 1, 6.0, 0.0)
        ),
        penalty=5.0,
        attack_cost=0.5,
        attack_prior=1.0,
    )
    return AuditGame(
        alert_types=alert_types,
        counts=counts,
        attack_map=AttackTypeMap.from_type_matrix(type_matrix, n_types=2),
        payoffs=payoffs,
        budget=budget,
    )


def mixed_policy(thresholds=(2.0, 2.0), p=(0.4, 0.6)) -> AuditPolicy:
    return AuditPolicy(
        orderings=(Ordering((0, 1)), Ordering((1, 0))),
        probabilities=np.asarray(p, dtype=np.float64),
        thresholds=np.asarray(thresholds, dtype=np.float64),
    )


class TestKernelAgreement:
    @pytest.mark.parametrize("z", [(2, 1), (5, 3), (1, 0), (0, 0)])
    def test_single_row_matches_pal(self, z):
        """Scoring the realized Z equals eq. 1 on a degenerate scenario set.

        With ConstantCount marginals the game's scenario set holds exactly
        the one realization we score, so ``Pal(o, b, t)`` from the
        reference kernel *is* the per-row detection — mixed over the
        policy weights.
        """
        game = constant_game(*z)
        scenarios = game.scenario_set()
        assert scenarios.counts.shape[0] == 1
        assert tuple(scenarios.counts[0]) == z
        policy = mixed_policy()
        scorer = PolicyScorer(policy, game)
        scores = scorer.score([list(z)])
        expected = np.zeros(game.n_types)
        for ordering, p_o in zip(policy.orderings, policy.probabilities, strict=True):
            expected += p_o * pal_for_ordering(
                ordering,
                policy.thresholds,
                scenarios,
                game.costs,
                game.budget,
                zero_count_rule=game.zero_count_rule,
            )
        np.testing.assert_allclose(
            scores.detection[0], expected, rtol=0, atol=0
        )

    def test_batch_rows_are_independent(self):
        game = constant_game(2, 1)
        scorer = PolicyScorer(mixed_policy(), game)
        rows = [[2, 1], [7, 0], [0, 4], [3, 3]]
        batch = scorer.score(rows)
        for i, row in enumerate(rows):
            single = scorer.score([row])
            np.testing.assert_array_equal(
                batch.detection[i], single.detection[0]
            )
            np.testing.assert_array_equal(
                batch.audited[i], single.audited[0]
            )
            assert batch.spent[i] == single.spent[0]

    def test_audited_and_spend_hand_check(self):
        # Budget 3, costs (1, 2), thresholds (2, 2), Z = (2, 1).
        # Ordering (0, 1): type 0 audits min(floor(3/1), floor(2/1), 2)=2
        # consuming min(2, 2*1)=2; type 1 then has capacity
        # floor((3-2)/2)=0 -> audits 0.
        # Ordering (1, 0): type 1 audits min(floor(3/2), floor(2/2), 1)=1
        # consuming min(2, 1*2)=2; type 0 then audits
        # min(floor((3-2)/1), 2, 2)=1.
        game = constant_game(2, 1)
        scorer = PolicyScorer(mixed_policy(p=(0.4, 0.6)), game)
        scores = scorer.score([[2, 1]])
        np.testing.assert_allclose(
            scores.audited[0], [0.4 * 2 + 0.6 * 1, 0.6 * 1]
        )
        np.testing.assert_allclose(
            scores.detection[0], [0.4 * 2 / 2 + 0.6 * 1 / 2, 0.6 * 1 / 1]
        )
        # Spend = audited @ costs.
        np.testing.assert_allclose(
            scores.spent[0], (0.4 * 2 + 0.6) * 1.0 + 0.6 * 2.0
        )

    def test_zero_count_unit_rule(self):
        # Z = (0, 0): the phantom singleton bin is caught when capacity
        # remains, but no realized alert is audited and no budget spent.
        game = constant_game(0, 0)
        scorer = PolicyScorer(mixed_policy(), game)
        scores = scorer.score([[0, 0]])
        np.testing.assert_array_equal(scores.detection[0], [1.0, 1.0])
        np.testing.assert_array_equal(scores.audited[0], [0.0, 0.0])
        assert scores.spent[0] == 0.0


class TestValidation:
    def test_rejects_mismatched_types(self):
        game = constant_game(2, 1)
        scorer = PolicyScorer(mixed_policy(), game)
        with pytest.raises(ValueError, match=r"shape \(B, 2\)"):
            scorer.score([[1, 2, 3]])

    def test_rejects_negative_and_nonfinite(self):
        scorer = PolicyScorer(mixed_policy(), constant_game(2, 1))
        with pytest.raises(ValueError, match="finite and non-negative"):
            scorer.score([[-1, 2]])
        with pytest.raises(ValueError, match="finite and non-negative"):
            scorer.score([[np.nan, 2]])

    def test_rejects_policy_game_mismatch(self):
        game = constant_game(2, 1)
        policy = AuditPolicy(
            orderings=(Ordering((0, 1, 2)),),
            probabilities=np.array([1.0]),
            thresholds=np.array([1.0, 1.0, 1.0]),
        )
        with pytest.raises(ValueError, match="types"):
            PolicyScorer(policy, game)

    def test_single_vector_coerces_to_one_row(self):
        scorer = PolicyScorer(mixed_policy(), constant_game(2, 1))
        scores = scorer.score([2, 1])
        assert scores.n_rows == 1
        payload = scores.to_payload()
        assert isinstance(payload["detection"][0][0], float)

    def test_support_is_pruned(self):
        game = constant_game(2, 1)
        policy = AuditPolicy(
            orderings=(Ordering((0, 1)), Ordering((1, 0))),
            probabilities=np.array([1.0, 0.0]),
            thresholds=np.array([2.0, 2.0]),
        )
        assert PolicyScorer(policy, game).support_size == 1
