"""``GET /metrics``: Prometheus text on every backend, consistent with /status.

The route returns the service-local registry rendered as text exposition
v0.0.4.  Three properties are pinned, each across the same backend
matrix as the route-contract suite:

* the body parses as Prometheus text and carries the score-latency
  histogram buckets and the re-solve counters;
* the Content-Type declares the exposition version (socket + fastapi —
  the in-proc interface returns the body only);
* every counter surfaced in ``/status`` equals the corresponding metric
  sample, because both read the same registry.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs
from repro.serve import StdlibApp, have_fastapi, make_fastapi_app

BACKENDS = [
    "inproc",
    "socket",
    pytest.param(
        "fastapi",
        marks=pytest.mark.skipif(
            not have_fastapi(), reason="fastapi not installed"
        ),
    ),
]


async def _socket_raw(host, port, method, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n".encode() + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, tail = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    content_type = ""
    for line in head.decode("latin-1").split("\r\n")[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-type":
            content_type = value.strip()
    return status, content_type, tail.decode()


async def _asgi_raw(app, method, path, body=None):
    payload = b"" if body is None else json.dumps(body).encode()
    scope = {
        "type": "http",
        "asgi": {"version": "3.0", "spec_version": "2.3"},
        "http_version": "1.1",
        "method": method,
        "scheme": "http",
        "path": path,
        "raw_path": path.encode(),
        "query_string": b"",
        "root_path": "",
        "headers": [
            (b"content-type", b"application/json"),
            (b"content-length", str(len(payload)).encode()),
        ],
        "server": ("testserver", 80),
        "client": ("testclient", 123),
    }
    messages = []

    async def receive():
        return {
            "type": "http.request", "body": payload, "more_body": False
        }

    async def send(message):
        messages.append(message)

    await app(scope, receive, send)
    start = next(
        m for m in messages if m["type"] == "http.response.start"
    )
    content_type = ""
    for name, value in start.get("headers", []):
        if name.decode().lower() == "content-type":
            content_type = value.decode()
    raw = b"".join(
        m.get("body", b"") for m in messages
        if m["type"] == "http.response.body"
    )
    return start["status"], content_type, raw.decode()


class _RawClient:
    """Raw (status, content_type, text) requests over one backend."""

    def __init__(self, backend, service, server=None, fastapi_app=None):
        self.backend = backend
        self.service = service
        self.server = server
        self.fastapi_app = fastapi_app

    async def request(self, method, path, body=None):
        if self.backend == "inproc":
            status, payload = await StdlibApp(self.service).handle(
                method, path, body
            )
            content_type = (
                obs.CONTENT_TYPE
                if isinstance(payload, str)
                else "application/json"
            )
            text = (
                payload if isinstance(payload, str)
                else json.dumps(payload)
            )
            return status, content_type, text
        if self.backend == "socket":
            host, port = self.server.sockets[0].getsockname()[:2]
            return await _socket_raw(host, port, method, path, body)
        return await _asgi_raw(self.fastapi_app, method, path, body)


def metrics_test(test_body):
    """Run ``test_body(client)`` against one started service + backend."""

    def wrapper(self, backend, make_service):
        async def main():
            async with make_service(drift_threshold=0.2) as service:
                server = None
                fastapi_app = None
                if backend == "socket":
                    app = StdlibApp(service)
                    server = await asyncio.start_server(
                        app._client_connected, "127.0.0.1", 0
                    )
                elif backend == "fastapi":
                    fastapi_app = make_fastapi_app(service)
                try:
                    await test_body(
                        self,
                        _RawClient(
                            backend, service, server, fastapi_app
                        ),
                    )
                finally:
                    if server is not None:
                        server.close()
                        await server.wait_closed()

        asyncio.run(main())

    return wrapper


def parse_samples(text):
    """Prometheus sample lines -> {metric{labels}: float}."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


@pytest.mark.parametrize("backend", BACKENDS)
class TestMetricsRoute:
    @metrics_test
    async def test_exposition_carries_score_and_resolve_metrics(
        self, client
    ):
        status, _, _ = await client.request(
            "POST", "/score", {"alerts": [[1, 1, 1, 1]] * 3}
        )
        assert status == 200
        status, _, _ = await client.request("POST", "/resolve")
        assert status == 200

        status, content_type, text = await client.request(
            "GET", "/metrics"
        )
        assert status == 200
        assert content_type == obs.CONTENT_TYPE
        assert "# TYPE repro_serve_score_seconds histogram" in text
        assert 'repro_serve_score_seconds_bucket{le="+Inf"} 1' in text
        samples = parse_samples(text)
        assert samples["repro_serve_score_requests_total"] == 1
        assert samples["repro_serve_rows_scored_total"] == 3
        assert (
            samples['repro_serve_resolves_scheduled_total{reason="manual"}']
            == 1
        )
        # The startup solve (reason="initial") plus the manual one.
        assert samples["repro_serve_resolves_completed_total"] == 2
        assert "repro_serve_resolve_lag_seconds" in samples

    @metrics_test
    async def test_status_and_metrics_agree(self, client):
        for _ in range(2):
            status, _, _ = await client.request(
                "POST", "/score", {"alerts": [[1, 1, 1, 1]] * 2}
            )
            assert status == 200
        status, _, _ = await client.request(
            "POST", "/alerts", {"counts": [[1, 0, 2, 1]] * 3}
        )
        assert status == 200

        status, _, body = await client.request("GET", "/status")
        assert status == 200
        payload = json.loads(body)
        status, _, text = await client.request("GET", "/metrics")
        assert status == 200
        samples = parse_samples(text)

        assert (
            samples["repro_serve_score_requests_total"]
            == payload["score_requests"]
        )
        assert (
            samples["repro_serve_rows_scored_total"]
            == payload["rows_scored"]
        )
        assert (
            samples["repro_serve_events_ingested_total"]
            == payload["events_ingested"]
        )
        assert samples["repro_serve_drift"] == payload["drift"]
        assert (
            samples["repro_serve_score_seconds_count"]
            == payload["score_requests"]
        )

    @metrics_test
    async def test_metrics_is_get_only(self, client):
        status, content_type, text = await client.request(
            "POST", "/metrics"
        )
        assert status == 405
        assert "application/json" in content_type
        assert "not allowed" in json.loads(text)["error"]
