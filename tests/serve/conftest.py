"""Shared serve-layer fixtures.

Service tests run real solves, so the shared configuration keeps them
cheap: Syn A at budget 2 with a coarse ISHM step.  Async tests drive
their own event loop via ``asyncio.run`` (one loop per test, no
framework plugin needed).
"""

from __future__ import annotations

import pytest

from repro.datasets import syn_a
from repro.engine import AuditEngine
from repro.serve import AuditService

#: Cheap-but-real solver settings shared by every service test.
FAST = {
    "solver": "ishm",
    "solver_options": {"step_size": 0.5},
    "estimator": "rolling-empirical",
    "estimator_options": {"window": 8, "min_periods": 2},
}


@pytest.fixture(scope="session")
def serve_game():
    """The small game every service test solves (Syn A, budget 2)."""
    return syn_a(budget=2)


@pytest.fixture()
def make_service(serve_game):
    """Factory for an :class:`AuditService` with the fast test config."""

    def factory(game=None, **overrides) -> AuditService:
        return AuditService(
            serve_game if game is None else game, **{**FAST, **overrides}
        )

    return factory


@pytest.fixture(scope="session")
def solve_result(serve_game):
    """One real SolveResult to publish in store-level tests."""
    with AuditEngine(serve_game) as engine:
        return engine.solve("ishm", step_size=0.5)
