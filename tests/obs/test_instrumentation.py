"""Telemetry at the instrumented boundaries: counters fire, results don't move.

The acceptance contract for the observability layer is two-sided:

* with telemetry **on**, every instrumented boundary (engine solve,
  batch pricing, simplex, CGGS, PalTable, the sim loop) records its
  counters/histograms into the global registry;
* with telemetry on or off, the numeric outputs are **bitwise
  identical** — instruments observe, they never steer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.engine import AuditEngine
from repro.obs import metrics as obs_metrics
from repro.obs.spans import SPAN_HISTOGRAM


def test_engine_solve_emits_boundary_metrics(tiny_game, registry):
    with AuditEngine(tiny_game) as engine:
        result = engine.solve("ishm", step_size=0.4)
    assert registry.get_counter(
        "repro_engine_solves_total", method="ishm"
    ) == 1.0
    hist = registry.get_histogram(
        "repro_engine_solve_seconds", method="ishm"
    )
    assert hist is not None and hist.count == 1
    # The boundary histogram agrees with the result's own stamp.
    assert result.solve_seconds is not None
    assert hist.total == pytest.approx(result.solve_seconds, rel=0.5)
    # Simplex-independent layers fired too.
    assert registry.counter_total("repro_master_lp_calls_total") > 0
    spans = registry.snapshot()["histograms"].get(SPAN_HISTOGRAM, {})
    assert any(
        dict(key)["span"] == "engine.solve" for key in spans
    )


def test_simplex_counters(tiny_game, registry):
    with AuditEngine(tiny_game) as engine:
        engine.solve("ishm", step_size=0.4, backend="simplex")
    solves = registry.counter_total("repro_simplex_solves_total")
    iters = registry.counter_total("repro_simplex_iterations_total")
    assert solves > 0
    assert iters >= solves  # at least one pivot per non-trivial solve


def test_cggs_counters(tiny_game, registry):
    with AuditEngine(tiny_game) as engine:
        engine.solve("ishm", step_size=0.4, inner="cggs")
    assert registry.counter_total("repro_cggs_solves_total") > 0
    assert registry.counter_total("repro_pal_table_builds_total") >= 0


def test_results_identical_with_telemetry_on_and_off(tiny_game):
    obs_metrics.disable()
    cold = AuditEngine(tiny_game).solve("ishm", step_size=0.4)
    obs.enable(obs.MetricsRegistry())
    hot = AuditEngine(tiny_game).solve("ishm", step_size=0.4)
    assert hot.objective == cold.objective
    assert np.array_equal(hot.thresholds, cold.thresholds)
    assert hot.diagnostics["lp_calls"] == cold.diagnostics["lp_calls"]


def test_parallel_pricing_identical_with_telemetry_on(tiny_game):
    """workers>1 == workers=1 stays bitwise with spans propagating."""
    obs.enable(obs.MetricsRegistry())
    serial = AuditEngine(tiny_game).solve("ishm", step_size=0.4)
    with AuditEngine(tiny_game, workers=2) as engine:
        with obs.span("test.fanout"):
            parallel = engine.solve("ishm", step_size=0.4)
    assert parallel.objective == serial.objective
    assert np.array_equal(parallel.thresholds, serial.thresholds)
    assert (
        parallel.diagnostics["lp_calls"] == serial.diagnostics["lp_calls"]
    )


def test_sim_counters_and_spans(tiny_game, registry):
    from repro.sim import AuditSimulator, SimConfig

    config = SimConfig(n_periods=2, solver="ishm",
                       solver_options={"step_size": 0.5})
    with AuditSimulator(tiny_game, config) as sim:
        trajectory = sim.run()
    assert trajectory.n_periods == 2
    assert registry.counter_total("repro_sim_periods_total") == 2.0
    hist = registry.get_histogram(
        "repro_sim_solve_seconds", memoized=False
    )
    assert hist is not None and hist.count >= 1
    spans = registry.snapshot()["histograms"].get(SPAN_HISTOGRAM, {})
    paths = {dict(key)["span"] for key in spans}
    # engine.solve nested under sim.period via the contextvar chain.
    assert any(p.startswith("sim.period.") for p in paths)
