"""Span chains: nesting, the disabled no-op, and cross-context adoption."""

from __future__ import annotations

import threading
from contextvars import copy_context

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs.spans import _NOOP, SPAN_HISTOGRAM


def span_labels(registry):
    """All recorded span-path labels, as a set of dotted strings."""
    series = registry.snapshot()["histograms"].get(SPAN_HISTOGRAM, {})
    return {dict(key)["span"] for key in series}


def test_nested_paths_label_the_histogram(registry):
    with obs.span("outer"):
        assert obs.current_span_path() == ("outer",)
        with obs.span("inner"):
            assert obs.current_span_path() == ("outer", "inner")
        assert obs.current_span_path() == ("outer",)
    assert obs.current_span_path() == ()
    assert span_labels(registry) == {"outer", "outer.inner"}


def test_span_records_duration_and_attrs(registry):
    with obs.span("solve", method="ishm"):
        pass
    series = registry.snapshot()["histograms"][SPAN_HISTOGRAM]
    (key,) = series
    labels = dict(key)
    assert labels == {"span": "solve", "method": "ishm"}
    snap = series[key]
    assert snap.count == 1
    assert snap.total >= 0.0


def test_disabled_span_is_shared_noop():
    obs_metrics.disable()
    s = obs.span("anything", method="x")
    assert s is _NOOP
    assert obs.span("other") is _NOOP
    with s:
        assert obs.current_span_path() == ()


def test_mid_span_disable_drops_the_record(registry):
    with obs.span("outer"):
        obs.disable()
    assert span_labels(registry) == set()


def test_span_survives_exceptions(registry):
    try:
        with obs.span("outer"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert obs.current_span_path() == ()
    assert span_labels(registry) == {"outer"}


def test_adopt_span_path_reroots(registry):
    with obs.adopt_span_path(("parent", "chunk")):
        with obs.span("work"):
            assert obs.current_span_path() == ("parent", "chunk", "work")
    assert obs.current_span_path() == ()
    assert span_labels(registry) == {"parent.chunk.work"}


def test_copied_context_thread_inherits_chain(registry):
    seen = {}

    def worker():
        with obs.span("child"):
            seen["path"] = obs.current_span_path()

    with obs.span("parent"):
        ctx = copy_context()
        t = threading.Thread(target=ctx.run, args=(worker,))
        t.start()
        t.join()
    assert seen["path"] == ("parent", "child")
    assert "parent.child" in span_labels(registry)


def test_plain_thread_starts_fresh(registry):
    seen = {}

    def worker():
        seen["path"] = obs.current_span_path()

    with obs.span("parent"):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    assert seen["path"] == ()
