"""Durations survive wall-clock adjustments (NTP steps, DST, ops).

Every duration in the codebase is measured with ``time.perf_counter()``
(or ``time.monotonic()`` for service uptime); ``time.time()`` remains
only where a real calendar timestamp is the point (policy publish
stamps, run_table row timestamps).  These tests step the wall clock
*backwards* mid-measurement and assert no negative duration leaks out.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import AuditEngine


@pytest.fixture()
def backwards_wall_clock(monkeypatch):
    """time.time() that loses an hour on every call."""
    real_time = time.time
    calls = {"n": 0}

    def jumping():
        calls["n"] += 1
        return real_time() - 3600.0 * calls["n"]

    monkeypatch.setattr(time, "time", jumping)
    return calls


def test_solve_seconds_nonnegative_under_clock_step(
    tiny_game, backwards_wall_clock
):
    result = AuditEngine(tiny_game).solve("ishm", step_size=0.4)
    assert result.solve_seconds is not None
    assert result.solve_seconds >= 0.0
    assert result.wall_time >= 0.0


def test_sim_solve_seconds_nonnegative_under_clock_step(
    tiny_game, backwards_wall_clock
):
    from repro.sim import AuditSimulator, SimConfig

    config = SimConfig(n_periods=2, solver="ishm",
                       solver_options={"step_size": 0.5})
    with AuditSimulator(tiny_game, config) as sim:
        trajectory = sim.run()
    assert all(r.solve_seconds >= 0.0 for r in trajectory.records)
    assert trajectory.total_solve_seconds >= 0.0


def test_span_durations_nonnegative_under_clock_step(
    registry, backwards_wall_clock
):
    from repro import obs

    with obs.span("outer"):
        with obs.span("inner"):
            pass
    series = registry.snapshot()["histograms"]["repro_span_seconds"]
    for snap in series.values():
        assert snap.total >= 0.0
