"""MetricsRegistry semantics: instruments, labels, toggle, threads."""

from __future__ import annotations

import math
import threading

import pytest

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry, label_key


class TestCounters:
    def test_counts_and_defaults(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        reg.counter("hits", 2.5)
        assert reg.get_counter("hits") == 3.5
        assert reg.get_counter("missing") == 0.0

    def test_labels_split_series(self):
        reg = MetricsRegistry()
        reg.counter("solves", method="ishm")
        reg.counter("solves", 2, method="cggs")
        assert reg.get_counter("solves", method="ishm") == 1.0
        assert reg.get_counter("solves", method="cggs") == 2.0
        assert reg.get_counter("solves") == 0.0  # unlabeled is its own series
        assert reg.counter_total("solves") == 3.0

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match=">= 0"):
            reg.counter("hits", -1)

    def test_label_key_is_order_insensitive(self):
        assert label_key({"b": 1, "a": "x"}) == label_key({"a": "x", "b": 1})


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("drift", 0.5)
        reg.gauge("drift", 0.25)
        assert reg.get_gauge("drift") == 0.25

    def test_default_when_unset(self):
        reg = MetricsRegistry()
        assert reg.get_gauge("missing") == 0.0
        assert reg.get_gauge("missing", default=None) is None


class TestHistograms:
    def test_bucket_assignment_and_snapshot(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.3, buckets=(0.1, 1.0))
        reg.observe("lat", 0.05)
        reg.observe("lat", 5.0)  # overflow
        snap = reg.get_histogram("lat")
        assert snap.buckets == (0.1, 1.0)
        assert snap.counts == (1, 1, 1)
        assert snap.count == 3
        assert snap.total == pytest.approx(5.35)

    def test_first_observation_pins_buckets(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.3, buckets=(0.1, 1.0))
        reg.observe("lat", 0.3, buckets=(7.0,))  # ignored
        assert reg.get_histogram("lat").buckets == (0.1, 1.0)

    def test_default_buckets(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.3)
        assert reg.get_histogram("lat").buckets == obs.DEFAULT_BUCKETS

    def test_empty_bucket_list_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="at least one bucket"):
            reg.observe("lat", 0.3, buckets=())

    def test_quantile(self):
        reg = MetricsRegistry()
        for v in (0.05, 0.05, 0.05, 0.5):
            reg.observe("lat", v, buckets=(0.1, 1.0))
        snap = reg.get_histogram("lat")
        assert snap.quantile(0.5) == 0.1
        assert snap.quantile(1.0) == 1.0
        reg.observe("lat", 99.0)
        assert reg.get_histogram("lat").quantile(1.0) == math.inf

    def test_quantile_edge_cases(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.05, buckets=(0.1,))
        snap = reg.get_histogram("lat")
        with pytest.raises(ValueError):
            snap.quantile(1.5)
        empty = obs.HistogramSnapshot(
            buckets=(0.1,), counts=(0, 0), total=0.0, count=0
        )
        assert math.isnan(empty.quantile(0.95))


class TestRegistryLifecycle:
    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.gauge("g", 1.0)
        reg.observe("h", 0.1)
        reg.reset()
        assert reg.get_counter("c") == 0.0
        assert reg.get_gauge("g") == 0.0
        assert reg.get_histogram("h") is None

    def test_snapshot_is_detached(self):
        reg = MetricsRegistry()
        reg.counter("c", 1)
        snap = reg.snapshot()
        reg.counter("c", 1)
        assert snap["counters"]["c"][()] == 1.0

    def test_thread_safety(self):
        reg = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                reg.counter("c")
                reg.observe("h", 0.01, buckets=(0.1,))

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.get_counter("c") == 8000.0
        assert reg.get_histogram("h").count == 8000


class TestGlobalToggle:
    def test_disabled_writers_are_noops(self):
        obs_metrics.disable()
        reg = MetricsRegistry()
        obs_metrics.set_registry(reg)
        obs.counter("c")
        obs.gauge("g", 1.0)
        obs.observe("h", 0.1)
        assert reg.get_counter("c") == 0.0
        assert reg.get_gauge("g") == 0.0
        assert reg.get_histogram("h") is None

    def test_enable_routes_to_registry(self, registry):
        obs.counter("c", 2)
        obs.gauge("g", 1.5)
        obs.observe("h", 0.1)
        assert registry.get_counter("c") == 2.0
        assert registry.get_gauge("g") == 1.5
        assert registry.get_histogram("h").count == 1

    def test_disable_keeps_registry(self, registry):
        obs.counter("c")
        obs.disable()
        assert not obs.enabled()
        obs.counter("c")  # dropped
        assert obs.get_registry() is registry
        assert registry.get_counter("c") == 1.0

    def test_env_toggle(self, monkeypatch):
        for raw, want in (
            ("1", True), ("true", True), ("on", True),
            ("0", False), ("", False), ("off", False), ("no", False),
        ):
            monkeypatch.setenv("REPRO_OBS", raw)
            assert obs_metrics._env_enabled() is want, raw
        monkeypatch.delenv("REPRO_OBS")
        assert obs_metrics._env_enabled() is False
