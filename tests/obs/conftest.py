"""Isolation for the global telemetry toggle and registry.

Every test in this package runs with the module-level state saved and
restored, so enabling telemetry in one test cannot leak into the
tier-1 suite (which assumes the default-off fast path).
"""

from __future__ import annotations

import pytest

from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def _isolate_obs_state():
    enabled = obs_metrics._enabled
    registry = obs_metrics._registry
    yield
    obs_metrics._enabled = enabled
    obs_metrics._registry = registry


@pytest.fixture
def registry():
    """A fresh registry installed as the enabled global one."""
    reg = obs_metrics.MetricsRegistry()
    obs_metrics.enable(reg)
    return reg
