"""RunTableWriter: layout, append semantics, gating, round-trips."""

from __future__ import annotations

import csv
import json
import threading

import pytest

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs.run_table import _COLUMN_NAMES


def test_append_round_trips_via_jsonl_and_csv(tmp_path):
    writer = obs.RunTableWriter(tmp_path)
    run_id = writer.new_run_id("solve-test")
    row = writer.append(
        run_id=run_id, kind="solve", name="syn_a", solver="ishm",
        objective=3.25, seed=7, custom_field="yes",
    )
    assert json.loads(row["extra"]) == {"custom_field": "yes"}
    rows = obs.read_rows(tmp_path)
    assert len(rows) == 1
    assert rows[0]["run_id"] == run_id
    assert rows[0]["objective"] == 3.25
    # CSV fallback parses the same row (stringly typed).
    (tmp_path / "run_table.jsonl").unlink()
    csv_rows = obs.read_rows(tmp_path)
    assert csv_rows[0]["run_id"] == run_id
    assert float(csv_rows[0]["objective"]) == 3.25


def test_header_written_once_and_columns_canonical(tmp_path):
    writer = obs.RunTableWriter(tmp_path)
    writer.append(run_id="a", kind="bench")
    writer.append(run_id="b", kind="bench")
    with (tmp_path / "run_table.csv").open(newline="") as f:
        reader = csv.reader(f)
        header = next(reader)
        assert tuple(header) == _COLUMN_NAMES
        assert len(list(reader)) == 2
    assert tuple(n for n, _ in obs.RUN_TABLE_COLUMNS) == _COLUMN_NAMES


def test_timestamp_autofilled(tmp_path):
    row = obs.RunTableWriter(tmp_path).append(run_id="a", kind="bench")
    assert isinstance(row["timestamp"], float)
    assert row["timestamp"] > 0


def test_run_ids_unique_and_prefixed(tmp_path):
    writer = obs.RunTableWriter(tmp_path)
    ids = {writer.new_run_id("bench-x") for _ in range(10)}
    assert len(ids) == 10
    assert all(i.startswith("bench-x-") for i in ids)


def test_raw_payloads_land_in_per_run_folder(tmp_path):
    writer = obs.RunTableWriter(tmp_path)
    path = writer.write_raw("run-1", "result.json", {"objective": 1.5})
    assert path == tmp_path / "raw_runs" / "run-1" / "result.json"
    assert json.loads(path.read_text()) == {"objective": 1.5}


def test_concurrent_appends_never_tear_rows(tmp_path):
    writer = obs.RunTableWriter(tmp_path)

    def hammer(tag):
        for i in range(50):
            writer.append(run_id=f"{tag}-{i}", kind="bench")

    threads = [
        threading.Thread(target=hammer, args=(t,)) for t in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    rows = obs.read_rows(tmp_path)
    assert len(rows) == 200
    assert len({r["run_id"] for r in rows}) == 200


class TestMaybeWriter:
    def test_env_dir_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs"))
        obs_metrics.disable()
        writer = obs.maybe_writer()
        assert writer is not None
        assert writer.root == tmp_path / "runs"

    def test_enabled_telemetry_defaults_to_results(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_RUN_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        obs.enable(obs.MetricsRegistry())
        writer = obs.maybe_writer()
        assert writer is not None
        assert writer.root.name == "results"

    def test_all_off_means_no_writer(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_DIR", raising=False)
        obs_metrics.disable()
        assert obs.maybe_writer() is None


def test_config_hash_stable_and_order_insensitive():
    a = obs.config_hash({"x": 1, "y": [1, 2]})
    b = obs.config_hash({"y": [1, 2], "x": 1})
    assert a == b
    assert len(a) == 12
    assert obs.config_hash({"x": 2}) != a
    assert obs.config_hash(None) == obs.config_hash({})


def test_read_rows_missing_dir_is_empty(tmp_path):
    assert obs.read_rows(tmp_path / "nope") == []


class TestTornWrites:
    def _write_rows(self, tmp_path, n=3):
        writer = obs.RunTableWriter(tmp_path)
        for i in range(n):
            writer.append(run_id=f"run-{i}", kind="bench")
        return tmp_path / "run_table.jsonl"

    def test_truncated_final_line_is_skipped_and_counted(self, tmp_path):
        jsonl = self._write_rows(tmp_path)
        # Simulate a crash mid-append: chop the last line in half.
        text = jsonl.read_text()
        lines = text.splitlines(keepends=True)
        jsonl.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        scan = obs.scan_rows(tmp_path)
        assert scan.torn_lines == 1
        assert [r["run_id"] for r in scan.rows] == ["run-0", "run-1"]
        # read_rows keeps working (the convenience wrapper).
        assert len(obs.read_rows(tmp_path)) == 2

    def test_clean_file_reports_zero_torn_lines(self, tmp_path):
        self._write_rows(tmp_path)
        scan = obs.scan_rows(tmp_path)
        assert scan.torn_lines == 0
        assert len(scan.rows) == 3

    def test_mid_file_corruption_is_an_error(self, tmp_path):
        jsonl = self._write_rows(tmp_path)
        lines = jsonl.read_text().splitlines(keepends=True)
        lines[1] = lines[1][:10] + "\n"  # not the final line: real damage
        jsonl.write_text("".join(lines))
        with pytest.raises(ValueError, match="not a torn final write"):
            obs.scan_rows(tmp_path)
