"""Prometheus text renderer: format, escaping, cumulative buckets."""

from __future__ import annotations

from repro import obs
from repro.obs.metrics import MetricsRegistry


def render(reg):
    text = obs.render_prometheus(reg)
    assert text.endswith("\n")
    return text.splitlines()


def test_counter_and_gauge_lines():
    reg = MetricsRegistry()
    reg.counter("repro_solves_total", 3, method="ishm")
    reg.gauge("repro_drift", 0.25)
    lines = render(reg)
    assert "# TYPE repro_solves_total counter" in lines
    assert 'repro_solves_total{method="ishm"} 3' in lines
    assert "# TYPE repro_drift gauge" in lines
    assert "repro_drift 0.25" in lines


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    for v in (0.05, 0.3, 0.3, 9.0):
        reg.observe("repro_lat_seconds", v, buckets=(0.1, 1.0))
    lines = render(reg)
    assert "# TYPE repro_lat_seconds histogram" in lines
    assert 'repro_lat_seconds_bucket{le="0.1"} 1' in lines
    assert 'repro_lat_seconds_bucket{le="1"} 3' in lines
    assert 'repro_lat_seconds_bucket{le="+Inf"} 4' in lines
    assert "repro_lat_seconds_count 4" in lines
    (sum_line,) = [l for l in lines if l.startswith("repro_lat_seconds_sum")]
    assert float(sum_line.split()[-1]) == 9.65


def test_label_values_escaped_and_names_sanitized():
    reg = MetricsRegistry()
    reg.counter("weird.metric-name", **{"the label": 'va"l\nue\\'})
    lines = render(reg)
    assert "# TYPE weird_metric_name counter" in lines
    assert (
        'weird_metric_name{the_label="va\\"l\\nue\\\\"} 1' in lines
    )


def test_output_is_deterministic():
    def build():
        reg = MetricsRegistry()
        reg.counter("b_total", method="z")
        reg.counter("b_total", method="a")
        reg.counter("a_total")
        reg.gauge("g", 1)
        reg.observe("h", 0.2)
        return obs.render_prometheus(reg)

    assert build() == build()


def test_empty_registry_renders_to_newline():
    assert obs.render_prometheus(MetricsRegistry()) == "\n"


def test_content_type_declares_the_exposition_version():
    assert obs.CONTENT_TYPE.startswith("text/plain")
    assert "version=0.0.4" in obs.CONTENT_TYPE
