"""The three Section V-B baselines and the key paper property:
the game-theoretic policy is never worse than any of them."""

import numpy as np
import pytest

from repro.baselines import (
    GreedyBenefitBaseline,
    RandomOrderBaseline,
    RandomThresholdBaseline,
    type_benefits,
)
from repro.solvers import iterative_shrink, solve_optimal


class TestRandomOrderBaseline:
    def test_uniform_mixture(self, syn_a_game, syn_a_scenarios):
        baseline = RandomOrderBaseline(
            syn_a_game, syn_a_scenarios, n_orderings=10,
            rng=np.random.default_rng(0),
        )
        outcome = baseline.run(np.array([3.0, 3.0, 3.0, 3.0]))
        assert outcome.policy.support_size == 10
        assert np.allclose(outcome.policy.probabilities, 0.1)

    def test_exhausts_small_ordering_spaces(self, tiny_game,
                                            tiny_scenarios):
        baseline = RandomOrderBaseline(
            tiny_game, tiny_scenarios, n_orderings=100,
            rng=np.random.default_rng(0),
        )
        outcome = baseline.run(np.array([2.0, 2.0]))
        assert outcome.policy.support_size == 2  # only 2! orderings

    def test_distinct_orderings(self, syn_a_game, syn_a_scenarios):
        baseline = RandomOrderBaseline(
            syn_a_game, syn_a_scenarios, n_orderings=20,
            rng=np.random.default_rng(1),
        )
        outcome = baseline.run(np.array([3.0, 3.0, 3.0, 3.0]))
        supports = {tuple(o) for o in outcome.policy.orderings}
        assert len(supports) == 20

    def test_rejects_bad_count(self, syn_a_game, syn_a_scenarios):
        with pytest.raises(ValueError):
            RandomOrderBaseline(
                syn_a_game, syn_a_scenarios, n_orderings=0
            )


class TestRandomThresholdBaseline:
    def test_aggregates_draws(self, tiny_game, tiny_scenarios):
        outcome = RandomThresholdBaseline(
            tiny_game, tiny_scenarios, n_draws=8,
            rng=np.random.default_rng(0),
        ).run()
        assert outcome.n_draws == 8
        assert outcome.min_loss <= outcome.mean_loss <= outcome.max_loss
        assert outcome.auditor_loss == outcome.mean_loss
        assert outcome.best_policy is not None

    def test_thresholds_respect_budget_floor(self, tiny_game,
                                             tiny_scenarios):
        baseline = RandomThresholdBaseline(
            tiny_game, tiny_scenarios, n_draws=1,
            rng=np.random.default_rng(0),
        )
        for _ in range(50):
            b = baseline._draw_thresholds()
            assert b.sum() >= tiny_game.budget

    def test_rejects_bad_draw_count(self, tiny_game, tiny_scenarios):
        with pytest.raises(ValueError):
            RandomThresholdBaseline(
                tiny_game, tiny_scenarios, n_draws=0
            )


class TestGreedyBenefitBaseline:
    def test_type_benefits_recovers_paper_vector(self, syn_a_game):
        assert type_benefits(syn_a_game).tolist() == [
            3.4, 3.7, 4.0, 4.3,
        ]

    def test_order_is_descending_benefit(self, syn_a_game,
                                         syn_a_scenarios):
        outcome = GreedyBenefitBaseline(
            syn_a_game, syn_a_scenarios
        ).run()
        benefits = type_benefits(syn_a_game)
        ordered = [benefits[t] for t in outcome.ordering]
        assert ordered == sorted(ordered, reverse=True)

    def test_deterministic_policy(self, syn_a_game, syn_a_scenarios):
        outcome = GreedyBenefitBaseline(
            syn_a_game, syn_a_scenarios
        ).run()
        assert outcome.policy.support_size == 1


class TestDominanceOverBaselines:
    """Figures 1-2 headline: the proposed model outperforms baselines."""

    def test_optimal_beats_all_baselines_on_syn_a(
        self, syn_a_game, syn_a_scenarios
    ):
        optimal = solve_optimal(syn_a_game, syn_a_scenarios)
        rng = np.random.default_rng(5)
        random_orders = RandomOrderBaseline(
            syn_a_game, syn_a_scenarios, n_orderings=24, rng=rng
        ).run(optimal.thresholds)
        greedy = GreedyBenefitBaseline(
            syn_a_game, syn_a_scenarios
        ).run()
        random_thresholds = RandomThresholdBaseline(
            syn_a_game, syn_a_scenarios, n_draws=10, rng=rng
        ).run()
        assert optimal.objective <= random_orders.auditor_loss + 1e-9
        assert optimal.objective <= greedy.auditor_loss + 1e-9
        assert optimal.objective <= random_thresholds.mean_loss + 1e-9

    def test_ishm_beats_greedy_baseline(self, syn_a_game,
                                        syn_a_scenarios):
        heuristic = iterative_shrink(
            syn_a_game, syn_a_scenarios, step_size=0.2
        )
        greedy = GreedyBenefitBaseline(
            syn_a_game, syn_a_scenarios
        ).run()
        assert heuristic.objective <= greedy.auditor_loss + 1e-9
