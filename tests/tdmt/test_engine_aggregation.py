"""TDMT engine labeling and log aggregation."""

import numpy as np
import pytest

from repro.distributions import DiscretizedGaussian, EmpiricalCounts
from repro.tdmt import (
    AccessEvent,
    AlertRecord,
    CompositeScheme,
    RelationshipRule,
    TDMTEngine,
    filter_repeated_accesses,
    fit_count_models,
    period_type_counts,
    summarize_counts,
)


@pytest.fixture()
def engine() -> TDMTEngine:
    rules = (
        RelationshipRule(
            "L", lambda a, t: a["last"] == t["last"]
        ),
        RelationshipRule(
            "N", lambda a, t: abs(a["x"] - t["x"]) <= 1.0
        ),
    )
    scheme = CompositeScheme(
        {
            frozenset({"L"}): "lastname",
            frozenset({"N"}): "neighbor",
            frozenset({"L", "N"}): "both",
        }
    )
    actors = {
        "e1": {"last": "ng", "x": 0.0},
        "e2": {"last": "wu", "x": 10.0},
    }
    targets = {
        "p1": {"last": "ng", "x": 0.5},   # L + N with e1
        "p2": {"last": "ng", "x": 50.0},  # L with e1
        "p3": {"last": "xu", "x": 9.5},   # N with e2
        "p4": {"last": "li", "x": 99.0},  # benign for both
    }
    return TDMTEngine(
        rules=rules, scheme=scheme, actors=actors, targets=targets
    )


class TestEngine:
    def test_flags(self, engine):
        assert engine.flags_for("e1", "p1") == frozenset({"L", "N"})
        assert engine.flags_for("e1", "p2") == frozenset({"L"})
        assert engine.flags_for("e2", "p4") == frozenset()

    def test_label_pair(self, engine):
        assert engine.label_pair("e1", "p1") == "both"
        assert engine.label_pair("e2", "p3") == "neighbor"
        assert engine.label_pair("e1", "p4") is None

    def test_unknown_actor(self, engine):
        with pytest.raises(KeyError, match="actor"):
            engine.label_pair("ghost", "p1")

    def test_label_events(self, engine):
        events = [
            AccessEvent(0, "e1", "p1"),
            AccessEvent(0, "e1", "p4"),  # benign: no record
            AccessEvent(1, "e2", "p3"),
        ]
        alerts = engine.label_events(events)
        assert [a.alert_type for a in alerts] == ["both", "neighbor"]

    def test_type_matrix(self, engine):
        matrix = engine.type_matrix(
            ["e1", "e2"], ["p1", "p4"], ["lastname", "neighbor", "both"]
        )
        assert matrix == [[2, -1], [-1, -1]]

    def test_type_matrix_missing_type(self, engine):
        with pytest.raises(KeyError):
            engine.type_matrix(["e1"], ["p1"], ["lastname"])

    def test_duplicate_rule_names_rejected(self, engine):
        with pytest.raises(ValueError):
            TDMTEngine(
                rules=(engine.rules[0], engine.rules[0]),
                scheme=engine.scheme,
                actors={},
                targets={},
            )


class TestAggregation:
    def test_filter_repeats(self):
        events = [
            AccessEvent(0, "e1", "p1"),
            AccessEvent(0, "e1", "p1"),
            AccessEvent(1, "e1", "p1"),  # new period: not a repeat
        ]
        distinct, repeats = filter_repeated_accesses(events)
        assert len(distinct) == 2
        assert repeats == 1

    def test_period_counts(self):
        alerts = [
            AlertRecord(0, "e1", "p1", "a"),
            AlertRecord(0, "e2", "p1", "a"),
            AlertRecord(1, "e1", "p1", "b"),
        ]
        counts = period_type_counts(alerts, ["a", "b"], n_periods=2)
        assert counts["a"].tolist() == [2, 0]
        assert counts["b"].tolist() == [0, 1]

    def test_period_counts_dedupes(self):
        alerts = [
            AlertRecord(0, "e1", "p1", "a"),
            AlertRecord(0, "e1", "p1", "a"),
        ]
        counts = period_type_counts(alerts, ["a"], n_periods=1)
        assert counts["a"].tolist() == [1]

    def test_period_counts_validates_types(self):
        with pytest.raises(ValueError):
            period_type_counts(
                [AlertRecord(0, "e", "p", "zzz")], ["a"], 1
            )

    def test_period_counts_validates_periods(self):
        with pytest.raises(ValueError):
            period_type_counts(
                [AlertRecord(5, "e", "p", "a")], ["a"], 2
            )

    def test_fit_gaussian_models(self):
        counts = {"a": np.array([10, 12, 8, 11, 9])}
        models = fit_count_models(counts, ["a"], method="gaussian")
        assert isinstance(models[0], DiscretizedGaussian)
        assert abs(models[0].mean() - 10.0) < 0.5

    def test_fit_empirical_models(self):
        counts = {"a": np.array([2, 2, 3])}
        models = fit_count_models(counts, ["a"], method="empirical")
        assert isinstance(models[0], EmpiricalCounts)
        assert models[0].pmf(2) == pytest.approx(2 / 3)

    def test_fit_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            fit_count_models({"a": np.array([1])}, ["a"],
                             method="magic")

    def test_summarize(self):
        counts = {"a": np.array([1, 3])}
        text = summarize_counts(counts, ["a"])
        assert "a" in text and "2.00" in text
