"""TDMT events, relationship rules and composite schemes."""

import pytest

from repro.tdmt import AccessEvent, AlertRecord, CompositeScheme, \
    RelationshipRule


class TestAccessEvent:
    def test_key(self):
        event = AccessEvent(period=3, actor="e1", target="p9")
        assert event.key == (3, "e1", "p9")

    def test_rejects_negative_period(self):
        with pytest.raises(ValueError):
            AccessEvent(period=-1, actor="a", target="b")

    def test_rejects_empty_names(self):
        with pytest.raises(ValueError):
            AccessEvent(period=0, actor="", target="b")


class TestAlertRecord:
    def test_for_event(self):
        event = AccessEvent(period=2, actor="a", target="b")
        record = AlertRecord.for_event(event, "vip")
        assert (record.period, record.alert_type) == (2, "vip")


class TestRelationshipRule:
    def test_matches_delegates_to_predicate(self):
        rule = RelationshipRule(
            "same-team",
            lambda a, t: a["team"] == t["team"],
        )
        assert rule.matches({"team": 1}, {"team": 1})
        assert not rule.matches({"team": 1}, {"team": 2})

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            RelationshipRule("", lambda a, t: True)


class TestCompositeScheme:
    def test_lookup(self):
        scheme = CompositeScheme(
            {
                frozenset({"L"}): "lastname",
                frozenset({"L", "N"}): "lastname+neighbor",
            }
        )
        assert scheme.type_for_flags(frozenset({"L"})) == "lastname"
        assert scheme.type_for_flags(
            frozenset({"N", "L"})
        ) == "lastname+neighbor"

    def test_empty_flags_are_benign(self):
        scheme = CompositeScheme({frozenset({"L"}): "lastname"})
        assert scheme.type_for_flags(frozenset()) is None

    def test_strict_raises_on_unknown_combo(self):
        scheme = CompositeScheme({frozenset({"L"}): "lastname"})
        with pytest.raises(KeyError):
            scheme.type_for_flags(frozenset({"X"}))

    def test_lenient_ignores_unknown_combo(self):
        scheme = CompositeScheme(
            {frozenset({"L"}): "lastname"}, strict=False
        )
        assert scheme.type_for_flags(frozenset({"X"})) is None

    def test_identity_scheme(self):
        scheme = CompositeScheme.identity(["a", "b"])
        assert scheme.type_for_flags(frozenset({"a"})) == "a"
        assert scheme.type_for_flags(frozenset({"a", "b"})) is None

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            CompositeScheme(
                {
                    frozenset({"a"}): "same",
                    frozenset({"b"}): "same",
                }
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CompositeScheme({})

    def test_type_names_deterministic(self):
        scheme = CompositeScheme(
            {
                frozenset({"b"}): "tb",
                frozenset({"a"}): "ta",
                frozenset({"a", "b"}): "tab",
            }
        )
        assert scheme.type_names == ("ta", "tb", "tab")
