"""The declared lock hierarchy stays consistent — with itself and with
the real classes it describes."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.devtools import lock_hierarchy

REPO = Path(__file__).resolve().parents[2]


class TestDeclaration:
    def test_ranks_and_names_are_unique(self):
        ranks = [spec.rank for spec in lock_hierarchy.LOCKS]
        names = [spec.name for spec in lock_hierarchy.LOCKS]
        assert len(set(ranks)) == len(ranks)
        assert len(set(names)) == len(names)

    def test_owner_attr_pairs_are_unique(self):
        pairs = [
            (spec.owner, spec.attr) for spec in lock_hierarchy.LOCKS
        ]
        assert len(set(pairs)) == len(pairs)

    def test_acquiring_methods_target_declared_locks(self):
        names = {spec.name for spec in lock_hierarchy.LOCKS}
        for method, target in lock_hierarchy.ACQUIRING_METHODS.items():
            assert target in names, f"{method} -> unknown lock {target}"

    def test_lock_for_resolution(self):
        assert lock_hierarchy.lock_for("AuditEngine", "_lock").rank == 20
        assert (
            lock_hierarchy.lock_for("FixedSolveCache", "_lock").rank == 30
        )
        # `_engines_lock` is unique across the hierarchy: resolvable
        # even when the receiver's class is unknown.
        assert lock_hierarchy.lock_for("", "_engines_lock").rank == 10
        # `_lock` is not: unknown receiver stays unresolved.
        assert lock_hierarchy.lock_for("", "_lock") is None
        assert lock_hierarchy.lock_for("Whatever", "_nope") is None

    def test_render_lists_every_lock(self):
        rendered = lock_hierarchy.render_hierarchy()
        for spec in lock_hierarchy.LOCKS:
            assert spec.name in rendered
            assert spec.attr in rendered


class TestRealityCheck:
    """Every declared lock exists: owner class assigns self.<attr>."""

    def _lock_assignments(self):
        found = set()
        for path in (REPO / "src" / "repro").rglob("*.py"):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for cls in ast.walk(tree):
                if not isinstance(cls, ast.ClassDef):
                    continue
                for node in ast.walk(cls):
                    if not isinstance(node, ast.Assign):
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            found.add((cls.name, target.attr))
        return found

    def test_every_declared_lock_is_assigned_by_its_owner(self):
        assignments = self._lock_assignments()
        for spec in lock_hierarchy.LOCKS:
            assert (spec.owner, spec.attr) in assignments, (
                f"{spec.name}: {spec.owner}.{spec.attr} is declared in "
                "the hierarchy but never assigned in src/repro"
            )
