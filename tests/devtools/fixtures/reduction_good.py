"""Good fixture: reductions over explicitly ordered iterables."""

import numpy as np


def sum_sorted_set(values):
    return sum(sorted({round(v, 6) for v in values}))


def sum_over_list(values):
    return sum([v * v for v in values])


def np_sum_over_array(array):
    return np.sum(array, axis=0)


def accumulate_over_sorted(table):
    total = 0.0
    for key in sorted(table):
        total += table[key]
    return total


def set_for_membership_not_reduction(values):
    seen = set(values)
    out = []
    for v in seen:
        out.append(v)  # collecting, not numeric accumulation
    return out
