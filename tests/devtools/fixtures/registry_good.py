"""Good fixture: registrants that honor the registry contracts."""

from repro.engine.registry import register_solver
from repro.sim.registry import ESTIMATORS, EVENT_SOURCES


class GoodConfig:
    @classmethod
    def from_dict(cls, data):
        return cls()


class DerivedConfig(GoodConfig):
    pass


@register_solver("good", config=GoodConfig)
def good_solver(game, scenarios, config, *, cache=None):
    return None


@register_solver("kwargs-style", config=DerivedConfig)
def kwargs_solver(game, scenarios, config, **kwargs):
    return None


class _RollingBase:
    def observe(self, period, counts):
        pass

    def model(self):
        return None


@ESTIMATORS.register("good-estimator")
class GoodEstimator(_RollingBase):
    """Protocol methods inherited from an in-file base."""


@EVENT_SOURCES.register("good-source")
class GoodSource:
    def counts(self, period, rng):
        return None
