"""Good fixture: blocking work stays off the event loop."""

import asyncio
import time


async def sleeps_async():
    await asyncio.sleep(0.1)


async def solves_off_loop(engine):
    return await asyncio.to_thread(engine.solve, "ishm")


def sync_helper_may_block(engine, path):
    time.sleep(0.0)
    with open(path) as fh:
        fh.read()
    return engine.solve("ishm")


async def nested_sync_def_runs_elsewhere(engine):
    def work():
        return engine.solve("ishm")

    return await asyncio.to_thread(work)
