"""Bad fixture: broad handlers that swallow failures silently."""


class Resolver:
    def resolve(self, request):
        try:
            return self.solve_blocking(request)
        except Exception:
            return None

    def drain(self, queue):
        handled = 0
        for item in queue:
            try:
                self.handle(item)
                handled += 1
            except:  # noqa: E722
                pass
        return handled

    def close(self, pool):
        try:
            pool.shutdown()
        except (OSError, Exception) as exc:
            self.last_error = exc
