"""Bad fixture: numeric accumulation over unordered iteration."""

import numpy as np


def sum_over_set(values):
    return sum({round(v, 6) for v in values})


def np_sum_over_dict_values(table):
    return np.sum(table.values())


def sum_genexp_over_set(values):
    return sum(v * v for v in set(values))


def accumulate_over_dict(table):
    total = 0.0
    for key in table.keys():
        total += table[key]
    return total
