"""Good fixture: broad handlers that re-raise or count the failure."""

from ... import obs


class Resolver:
    def resolve(self, request):
        try:
            return self.solve_blocking(request)
        except Exception as exc:
            obs.counter(
                "repro_serve_resolve_errors_total",
                error=type(exc).__name__,
            )
            return None

    def drain(self, queue):
        handled = 0
        for item in queue:
            try:
                self.handle(item)
                handled += 1
            except Exception as exc:
                self.metrics.counter(
                    "repro_serve_worker_errors_total",
                    error=type(exc).__name__,
                )
        return handled

    def close(self, pool):
        try:
            pool.shutdown()
        except Exception:
            self.cleanup()
            raise

    def parse(self, payload):
        # Narrow handlers are never policed: the rule is about broad
        # catch-alls, not deliberate per-type handling.
        try:
            return int(payload)
        except ValueError:
            return 0
