"""Bad fixture: mutating the frozen result contracts."""


def mutate_annotated(result: "SolveResult"):
    result.value = 0.0


def sneak_setattr(policy: "PublishedPolicy"):
    object.__setattr__(policy, "version", 99)


def mutate_fresh_instance():
    record = SolveResult()  # noqa: F821 - fixture is parsed, never run
    record.policy = None
    return record
