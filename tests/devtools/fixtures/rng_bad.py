"""Bad fixture: global RNG state and unseeded generators."""

import random

import numpy as np
from numpy.random import default_rng


def module_state(n):
    return np.random.normal(size=n)


def unseeded_bare():
    return default_rng()


def unseeded_np():
    return np.random.default_rng()


def stdlib_choice(items):
    return random.choice(items)
