"""Good fixture: contracts read or replaced, never mutated."""

import dataclasses


def replace_not_mutate(result: "SolveResult"):
    return dataclasses.replace(result, value=0.0)


def read_is_fine(policy: "PublishedPolicy"):
    return policy.version


def other_objects_are_mutable(thing):
    thing.value = 0.0
    return thing


class NotAContract:
    def __init__(self):
        object.__setattr__(self, "x", 1)  # frozen-dataclass idiom
