"""Bad fixture: telemetry recorded inside kernel hot loops."""

from ... import obs


class Kernel:
    def iterate(self, rows):
        total = 0.0
        for row in sorted(rows):
            obs.counter("repro_simplex_pivots_total")
            total += row
        return total

    def refactorize(self, deadline):
        steps = 0
        while steps < deadline:
            self.metrics.observe("repro_refactor_seconds", 0.1)
            steps += 1
        return steps

    def spanned(self, rows):
        total = 0.0
        for row in sorted(rows):
            with obs.span("pivot", row=row):
                total += row
        return total
