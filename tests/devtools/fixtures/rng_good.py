"""Good fixture: randomness flows through seeded Generators."""

import numpy as np


def seeded(seed):
    return np.random.default_rng(seed)


def seeded_kw():
    return np.random.default_rng(seed=0)


def threaded(rng: np.random.Generator, n: int):
    return rng.normal(size=n)


def explicit_bit_generator(seed):
    return np.random.Generator(np.random.PCG64(seed))
