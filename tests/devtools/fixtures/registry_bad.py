"""Bad fixture: registrants that break the registry contracts."""

from repro.engine.registry import register_solver
from repro.sim.registry import ADVERSARIES, ESTIMATORS


class BadConfig:
    pass


@register_solver("bad", config=BadConfig)
def bad_solver(game):
    return None


@ESTIMATORS.register("bad-estimator")
class BadEstimator:
    def __init__(self):
        pass


@ADVERSARIES.register("bad-adversary")
class BadAdversary:
    def pick(self, policy):  # protocol method is `choose`
        return 0
