"""Fixture: inline suppressions silence specific codes (or all)."""

import time


async def known_blocking_kept():
    time.sleep(0.0)  # replint: disable=RPL201


async def everything_waved_through(engine):
    return engine.solve("ishm")  # replint: disable=all
