"""Good fixture: acquisitions that descend the hierarchy (or don't nest)."""

import threading


class AuditEngine:
    """Name mirrors the real engine class, so ``self._lock`` is rank 20."""

    def __init__(self):
        self._lock = threading.RLock()

    def publish_under_engine(self, store, fingerprint, budget, result):
        with self._lock:  # rank 20 -> publish acquires rank 40: descends
            return store.publish(fingerprint, budget, result)

    def reentrant_is_fine(self):
        with self._lock:
            with self._lock:  # re-acquiring a held RLock
                return None

    def nested_def_is_a_barrier(self):
        with self._lock:
            def later(other):
                with other._engines_lock:  # runs later, holds nothing
                    return None

            return later


class AuditService:
    def __init__(self):
        self._engines_lock = threading.RLock()

    def solve_under_engines_lock(self, engine):
        with self._engines_lock:  # rank 10 -> solve acquires 20: descends
            return engine.solve("ishm")
