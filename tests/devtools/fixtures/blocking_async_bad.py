"""Bad fixture: blocking calls made directly on the event loop."""

import time


async def sleeps_on_loop():
    time.sleep(0.1)


async def solves_on_loop(engine):
    return engine.solve("ishm")


async def reads_on_loop(path):
    with open(path) as fh:
        return fh.read()
