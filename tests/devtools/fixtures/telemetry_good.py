"""Good fixture: plain-int counting in loops, telemetry at the boundary."""

from ... import obs


class Kernel:
    def __init__(self):
        self._pivots = 0

    def solve(self, rows):
        self._pivots = 0
        total = self._iterate(rows)
        obs.counter("repro_simplex_pivots_total", self._pivots)
        obs.observe("repro_simplex_solve_seconds", 0.0)
        return total

    def _iterate(self, rows):
        total = 0.0
        for row in sorted(rows):
            self._pivots += 1
            total += row
        return total


def make_callbacks(specs):
    # A def inside a loop is a barrier: its body runs per call, not per
    # iteration, so boundary telemetry there is fine.
    callbacks = []
    for name in sorted(specs):
        def emit(label=name):
            obs.counter("repro_callback_total", source=label)

        callbacks.append(emit)
    return callbacks
