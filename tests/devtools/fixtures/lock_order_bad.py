"""Bad fixture: every way to break the declared lock hierarchy."""

import threading


class FixedSolveCache:
    """Name mirrors the real cache class, so ``self._lock`` is rank 30."""

    def __init__(self):
        self._lock = threading.RLock()
        self._engines_lock = threading.RLock()
        self._stats_lock = threading.Lock()

    def inverted_with(self):
        with self._lock:
            with self._engines_lock:  # rank 10 under rank 30
                return None

    def unranked_under_ranked(self):
        with self._lock:
            with self._stats_lock:  # not in the hierarchy
                return None

    def solve_under_cache_lock(self, engine):
        with self._lock:
            return engine.solve("ishm")  # acquires rank 20 under 30
