"""Per-rule coverage: every rule fires on its bad fixture, stays
silent on its good one, and the full output matches the golden file.

Deleting any single rule's implementation breaks that rule's
``test_fires_on_bad_fixture`` (and the golden test), which is the
acceptance contract for the rule set.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.engine import LintEngine, available_rules, get_rule

FIXTURES = Path(__file__).parent / "fixtures"

#: rule primary code -> (bad fixture, good fixture)
RULE_FIXTURES = {
    "RPL101": ("lock_order_bad.py", "lock_order_good.py"),
    "RPL201": ("blocking_async_bad.py", "blocking_async_good.py"),
    "RPL301": ("rng_bad.py", "rng_good.py"),
    "RPL401": ("reduction_bad.py", "reduction_good.py"),
    "RPL501": ("frozen_bad.py", "frozen_good.py"),
    "RPL601": ("registry_bad.py", "registry_good.py"),
    "RPL701": ("telemetry_bad.py", "telemetry_good.py"),
    "RPL801": ("swallow_bad.py", "swallow_good.py"),
}


def test_every_registered_rule_has_fixtures():
    registered = {spec.code for spec in available_rules()}
    assert registered == set(RULE_FIXTURES)


@pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
class TestPerRule:
    def test_fires_on_bad_fixture(self, code, lint_fixture):
        bad, _ = RULE_FIXTURES[code]
        report = lint_fixture(bad, rules=[code])
        assert report.findings, f"{code} stayed silent on {bad}"
        allowed = set(get_rule(code).codes)
        assert {f.code for f in report.findings} <= allowed

    def test_silent_on_good_fixture(self, code, lint_fixture):
        _, good = RULE_FIXTURES[code]
        report = lint_fixture(good, rules=[code])
        assert report.findings == [], (
            f"{code} false-positived on {good}: "
            f"{[f.render() for f in report.findings]}"
        )

    def test_bad_fixture_matches_golden(self, code, golden, lint_fixture):
        bad, _ = RULE_FIXTURES[code]
        report = lint_fixture(bad)  # all rules, as the golden file ran
        assert [f.to_dict() for f in report.findings] == golden[bad][
            "findings"
        ]


def test_all_fixtures_match_golden(golden, lint_fixture):
    for name, entry in golden.items():
        report = lint_fixture(name)
        assert [
            f.to_dict() for f in report.findings
        ] == entry["findings"], f"drift in {name}"
        assert report.suppressed == entry["suppressed"], name


def test_suppression_fixture_is_counted(lint_fixture):
    report = lint_fixture("suppressed.py")
    assert report.findings == []
    assert report.suppressed == 2


class TestRuleSpecifics:
    """Behavioral corners the golden file can't express by itself."""

    def test_lock_codes_cover_inversion_and_unranked(self, lint_fixture):
        codes = [f.code for f in lint_fixture("lock_order_bad.py").findings]
        assert "RPL101" in codes and "RPL102" in codes

    def test_rng_codes_cover_all_three(self, lint_fixture):
        codes = {f.code for f in lint_fixture("rng_bad.py").findings}
        assert codes == {"RPL301", "RPL302", "RPL303"}

    def test_reduction_rule_ignores_non_kernel_modules(self, lint_fixture):
        source = (FIXTURES / "reduction_bad.py").read_text(encoding="utf-8")
        report = LintEngine(rules=["RPL401"]).lint_file(
            Path("reduction_bad.py"),
            source=source,
            domain="src",
            module="repro.serve.fixture",  # not core/solvers
        )
        assert report.findings == []

    def test_frozen_rule_exempts_defining_module(self, lint_fixture):
        source = (FIXTURES / "frozen_bad.py").read_text(encoding="utf-8")
        report = LintEngine(rules=["RPL501"]).lint_file(
            Path("frozen_bad.py"),
            source=source,
            domain="src",
            module="repro.serve.store",  # defining module: exempt
        )
        assert report.findings == []

    def test_blocking_rule_skips_sync_functions(self, lint_fixture):
        report = lint_fixture("blocking_async_good.py", rules=["RPL201"])
        assert report.findings == []
