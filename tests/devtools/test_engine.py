"""Engine mechanics: registry, walking, suppressions, baseline, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import baseline as baseline_mod
from repro.devtools.engine import (
    LintEngine,
    Rule,
    available_rules,
    classify_domain,
    get_rule,
    iter_python_files,
    module_name,
    register_rule,
    rule_table,
)
from repro.devtools.findings import Finding
from repro.devtools.lint import main as lint_main

REPO = Path(__file__).resolve().parents[2]


class TestRegistry:
    def test_eight_rules_registered(self):
        specs = available_rules()
        assert len(specs) == 8
        assert [s.code for s in specs] == [
            "RPL101",
            "RPL201",
            "RPL301",
            "RPL401",
            "RPL501",
            "RPL601",
            "RPL701",
            "RPL801",
        ]

    def test_specs_carry_docs(self):
        for spec in available_rules():
            assert spec.name and spec.summary and spec.invariant
            assert spec.code in spec.codes
            assert spec.domains

    def test_get_rule_unknown_code(self):
        with pytest.raises(KeyError, match="no rule registered"):
            get_rule("RPL999")

    def test_register_rejects_duplicate_codes(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_rule
            class Duplicate(Rule):  # pragma: no cover - registration fails
                code = "RPL101"
                name = "dup"

    def test_register_rejects_clashing_secondary_codes(self):
        with pytest.raises(ValueError, match="already claimed"):

            @register_rule
            class Clash(Rule):  # pragma: no cover - registration fails
                code = "RPL998"
                codes = ("RPL998", "RPL102")
                name = "clash"

    def test_rule_table_mentions_every_rule(self):
        table = rule_table()
        for spec in available_rules():
            assert spec.name in table


class TestClassification:
    def test_domains(self):
        assert classify_domain(Path("src/repro/core/game.py")) == "src"
        assert classify_domain(Path("tests/core/test_game.py")) == "tests"
        assert classify_domain(Path("benchmarks/bench_serve.py")) == (
            "benchmarks"
        )
        assert classify_domain(Path("examples/quickstart.py")) == "examples"
        assert classify_domain(Path("scripts/tool.py")) == "other"

    def test_module_name(self):
        assert module_name(Path("src/repro/core/game.py")) == (
            "repro.core.game"
        )
        assert module_name(Path("benchmarks/bench_serve.py")) == (
            "bench_serve"
        )

    def test_iter_python_files_skips_fixture_dirs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "fixtures").mkdir()
        (tmp_path / "pkg" / "fixtures" / "bad.py").write_text("x = 1\n")
        walked = sorted(iter_python_files([tmp_path]))
        assert walked == [tmp_path / "pkg" / "mod.py"]
        # ... but an explicit file argument is always linted.
        explicit = tmp_path / "pkg" / "fixtures" / "bad.py"
        assert list(iter_python_files([explicit])) == [explicit]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files([Path("no/such/dir")]))


class TestEngineRuns:
    def test_output_is_deterministic(self):
        engine = LintEngine()
        first = engine.lint_paths([REPO / "src" / "repro" / "serve"])
        second = engine.lint_paths([REPO / "src" / "repro" / "serve"])
        assert first.findings == second.findings
        assert first.files_scanned == second.files_scanned
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())

    def test_parse_errors_are_reported_not_raised(self, tmp_path):
        bad = tmp_path / "src" / "broken.py"
        bad.parent.mkdir()
        bad.write_text("def broken(:\n")
        report = LintEngine().lint_paths([tmp_path])
        assert report.findings == []
        assert len(report.parse_errors) == 1
        assert "broken.py" in report.parse_errors[0]

    def test_real_tree_clean_against_committed_baseline(self):
        report = LintEngine().lint_paths(
            [REPO / "src", REPO / "tests", REPO / "benchmarks"]
        )
        assert report.parse_errors == []
        baseline = baseline_mod.load_baseline(
            REPO / "devtools_baseline.json"
        )
        new, stale = baseline_mod.compare(report.findings, baseline)
        assert new == [], f"new findings: {new}"
        assert stale == [], f"stale baseline entries: {stale}"


def _finding(code="RPL201", message="m", path="a.py", line=1):
    return Finding(
        path=path, line=line, col=0, code=code, message=message
    )


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        findings = [_finding(), _finding(), _finding(message="other")]
        path = tmp_path / "baseline.json"
        baseline_mod.write_baseline(path, findings)
        loaded = baseline_mod.load_baseline(path)
        assert sorted(loaded.values()) == [1, 2]
        new, stale = baseline_mod.compare(findings, loaded)
        assert (new, stale) == ([], [])

    def test_missing_file_is_empty(self, tmp_path):
        assert baseline_mod.load_baseline(tmp_path / "nope.json") == {}

    def test_new_and_stale_detection(self):
        old = _finding(message="old")
        kept = _finding(message="kept")
        baseline = baseline_mod.counts_for([old, kept])
        fresh = [kept, _finding(message="new"), _finding(message="new")]
        new, stale = baseline_mod.compare(fresh, baseline)
        assert len(new) == 2  # one per excess occurrence
        assert new[0] == new[1] == _finding(message="new").baseline_key
        assert stale == [old.baseline_key]

    def test_line_moves_do_not_churn_identity(self):
        assert (
            _finding(line=10).baseline_key == _finding(line=99).baseline_key
        )

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": {}}')
        with pytest.raises(ValueError, match="unsupported baseline"):
            baseline_mod.load_baseline(path)


BAD_ASYNC = (
    "import time\n\nasync def f():\n    time.sleep(0.1)\n"
)


class TestCli:
    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RPL101" in out and "RPL601" in out

    def test_no_paths_is_usage_error(self, capsys):
        assert lint_main([]) == 2

    def test_unknown_rule_is_usage_error(self, capsys):
        assert lint_main(["src", "--select", "RPL999"]) == 2

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["no/such/dir", "--no-baseline"]) == 2

    def test_clean_and_dirty_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("import asyncio\n\nasync def f():\n    pass\n")
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_ASYNC)
        assert lint_main([str(good), "--no-baseline"]) == 0
        assert lint_main([str(bad), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RPL201" in out

    def test_json_output_shape(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_ASYNC)
        assert (
            lint_main([str(bad), "--no-baseline", "--format", "json"]) == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["summary"] == {"RPL201": 1}
        assert payload["findings"][0]["code"] == "RPL201"

    def test_baseline_ratchet_cycle(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_ASYNC)
        baseline = tmp_path / "baseline.json"
        # 1. Record the debt.
        assert (
            lint_main(
                [str(bad), "--baseline", str(baseline), "--write-baseline"]
            )
            == 0
        )
        # 2. Same findings against the baseline: clean.
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 0
        # 3. Fixing the file makes the entry stale: the ratchet fails
        #    until the baseline shrinks too.
        bad.write_text("import asyncio\n\nasync def f():\n    pass\n")
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "stale" in out
