"""Shared devtools-test helpers: fixture linting with forced domains."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.engine import LintEngine

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = FIXTURES / "golden_findings.json"


@pytest.fixture(scope="session")
def golden():
    """The committed golden findings, keyed by fixture file name."""
    return json.loads(GOLDEN.read_text(encoding="utf-8"))


@pytest.fixture(scope="session")
def lint_fixture(golden):
    """Lint one fixture exactly as the golden file did (forced domain)."""

    def run(name: str, rules=None):
        entry = golden[name]
        engine = LintEngine(rules=rules)
        return engine.lint_file(
            Path(name),
            source=(FIXTURES / name).read_text(encoding="utf-8"),
            domain=entry["domain"],
            module=entry["module"],
        )

    return run
