"""AlertCountModel shared behaviour: Poisson, Constant, validation."""

import numpy as np
import pytest

from repro.distributions import (
    AlertCountModel,
    ConstantCount,
    DiscretizedGaussian,
    TruncatedPoisson,
)


class TestTruncatedPoisson:
    def test_support_starts_at_zero(self):
        model = TruncatedPoisson(rate=4.0)
        assert model.min_count == 0

    def test_pmf_sums_to_one(self):
        model = TruncatedPoisson(rate=4.0)
        assert np.isclose(model.support_pmf().sum(), 1.0)

    def test_mean_near_rate(self):
        model = TruncatedPoisson(rate=9.0)
        assert abs(model.mean() - 9.0) < 0.2

    def test_coverage_extends_support(self):
        narrow = TruncatedPoisson(rate=5.0, coverage=0.9)
        wide = TruncatedPoisson(rate=5.0, coverage=0.9999)
        assert wide.max_count > narrow.max_count

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            TruncatedPoisson(rate=0.0)

    def test_rejects_bad_coverage(self):
        with pytest.raises(ValueError):
            TruncatedPoisson(rate=2.0, coverage=0.2)


class TestConstantCount:
    def test_point_mass(self):
        model = ConstantCount(5)
        assert model.pmf(5) == 1.0
        assert model.pmf(4) == 0.0
        assert model.mean() == 5.0
        assert model.std() == 0.0

    def test_sampling_is_constant(self, rng):
        model = ConstantCount(3)
        assert np.all(model.sample(rng, 10) == 3)

    def test_zero_allowed(self):
        assert ConstantCount(0).max_count == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantCount(-1)


class TestSharedBehaviour:
    @pytest.fixture(params=["gaussian", "poisson", "constant"])
    def model(self, request) -> AlertCountModel:
        return {
            "gaussian": DiscretizedGaussian(6.0, 2.0),
            "poisson": TruncatedPoisson(4.0),
            "constant": ConstantCount(4),
        }[request.param]

    def test_support_matches_bounds(self, model):
        support = model.support()
        assert support[0] == model.min_count
        assert support[-1] == model.max_count

    def test_cdf_monotone(self, model):
        values = model.cdf(model.support())
        values = np.atleast_1d(values)
        assert np.all(np.diff(values) >= -1e-12)

    def test_quantile_extremes(self, model):
        assert model.quantile(0.0) == model.min_count
        assert model.quantile(1.0) == model.max_count

    def test_quantile_rejects_out_of_range(self, model):
        with pytest.raises(ValueError):
            model.quantile(1.5)

    def test_validate_all_accepts(self, model):
        AlertCountModel.validate_all([model])


class TestValidateAll:
    def test_flags_bad_pmf(self):
        class Broken(ConstantCount):
            def pmf(self, count):
                return np.zeros_like(np.atleast_1d(count), dtype=float)

        with pytest.raises(ValueError, match="sums to"):
            AlertCountModel.validate_all([Broken(1)])
