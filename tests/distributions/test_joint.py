"""JointCountModel and ScenarioSet."""

import numpy as np
import pytest

from repro.distributions import (
    ConstantCount,
    DiscretizedGaussian,
    EmpiricalCounts,
    JointCountModel,
    ScenarioSet,
)


class TestScenarioSet:
    def test_valid_construction(self):
        sc = ScenarioSet(
            counts=np.array([[1, 2], [3, 4]]),
            weights=np.array([0.25, 0.75]),
        )
        assert sc.n_scenarios == 2
        assert sc.n_types == 2

    def test_weights_renormalized(self):
        sc = ScenarioSet(
            counts=np.array([[1], [2]]),
            weights=np.array([0.5, 0.5]),
        )
        assert np.isclose(sc.weights.sum(), 1.0)

    def test_expected_counts(self):
        sc = ScenarioSet(
            counts=np.array([[0, 10], [10, 0]]),
            weights=np.array([0.3, 0.7]),
        )
        assert np.allclose(sc.expected_counts(), [7.0, 3.0])

    def test_rejects_weight_mismatch(self):
        with pytest.raises(ValueError):
            ScenarioSet(
                counts=np.array([[1], [2]]), weights=np.array([1.0])
            )

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            ScenarioSet(
                counts=np.array([[-1]]), weights=np.array([1.0])
            )

    def test_rejects_unnormalized_weights(self):
        with pytest.raises(ValueError):
            ScenarioSet(
                counts=np.array([[1], [2]]),
                weights=np.array([0.2, 0.2]),
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ScenarioSet(
                counts=np.zeros((0, 2)), weights=np.zeros(0)
            )


class TestJointCountModel:
    def test_exact_enumeration_matches_product(self):
        joint = JointCountModel(
            [EmpiricalCounts({0: 0.5, 1: 0.5}),
             EmpiricalCounts({2: 0.25, 3: 0.75})]
        )
        sc = joint.exact_scenarios()
        assert sc.exact
        assert sc.n_scenarios == 4
        # P(Z = (1, 3)) = 0.5 * 0.75.
        row = np.nonzero(
            (sc.counts == np.array([1, 3])).all(axis=1)
        )[0]
        assert np.isclose(sc.weights[row[0]], 0.375)

    def test_exact_scenario_count(self):
        joint = JointCountModel(
            [DiscretizedGaussian(6, 2.0), DiscretizedGaussian(5, 1.6)]
        )
        assert joint.n_exact_scenarios() == 11 * 9
        assert joint.exact_scenarios().n_scenarios == 99

    def test_exact_guard(self):
        joint = JointCountModel([ConstantCount(1), ConstantCount(2)])
        with pytest.raises(ValueError):
            joint.exact_scenarios(max_scenarios=0)

    def test_sampling_shape_and_support(self, rng):
        joint = JointCountModel(
            [DiscretizedGaussian(6, 2.0), ConstantCount(4)]
        )
        sc = joint.sample_scenarios(100, rng)
        assert not sc.exact
        assert sc.counts.shape == (100, 2)
        assert np.all(sc.counts[:, 1] == 4)
        assert sc.counts[:, 0].min() >= 1

    def test_scenarios_prefers_exact_when_small(self, rng):
        joint = JointCountModel([ConstantCount(1), ConstantCount(2)])
        sc = joint.scenarios(rng=rng)
        assert sc.exact

    def test_scenarios_samples_when_large(self, rng):
        joint = JointCountModel(
            [DiscretizedGaussian(100, 30.0) for _ in range(4)]
        )
        sc = joint.scenarios(rng=rng, n_samples=64,
                             prefer_exact_below=10)
        assert not sc.exact
        assert sc.n_scenarios == 64

    def test_scenarios_requires_rng_when_large(self):
        joint = JointCountModel(
            [DiscretizedGaussian(100, 30.0) for _ in range(4)]
        )
        with pytest.raises(ValueError):
            joint.scenarios(prefer_exact_below=10)

    def test_upper_bounds(self):
        joint = JointCountModel(
            [DiscretizedGaussian(6, 2.0), ConstantCount(3)]
        )
        assert joint.upper_bounds().tolist() == [11, 3]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            JointCountModel([])

    def test_rejects_bad_sample_count(self, rng):
        joint = JointCountModel([ConstantCount(1)])
        with pytest.raises(ValueError):
            joint.sample_scenarios(0, rng)
