"""JointCountModel and ScenarioSet."""

import numpy as np
import pytest

from repro.distributions import (
    ConstantCount,
    DiscretizedGaussian,
    EmpiricalCounts,
    JointCountModel,
    ScenarioSet,
)


class TestScenarioSet:
    def test_valid_construction(self):
        sc = ScenarioSet(
            counts=np.array([[1, 2], [3, 4]]),
            weights=np.array([0.25, 0.75]),
        )
        assert sc.n_scenarios == 2
        assert sc.n_types == 2

    def test_weights_renormalized(self):
        sc = ScenarioSet(
            counts=np.array([[1], [2]]),
            weights=np.array([0.5, 0.5]),
        )
        assert np.isclose(sc.weights.sum(), 1.0)

    def test_expected_counts(self):
        sc = ScenarioSet(
            counts=np.array([[0, 10], [10, 0]]),
            weights=np.array([0.3, 0.7]),
        )
        assert np.allclose(sc.expected_counts(), [7.0, 3.0])

    def test_rejects_weight_mismatch(self):
        with pytest.raises(ValueError):
            ScenarioSet(
                counts=np.array([[1], [2]]), weights=np.array([1.0])
            )

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            ScenarioSet(
                counts=np.array([[-1]]), weights=np.array([1.0])
            )

    def test_rejects_unnormalized_weights(self):
        with pytest.raises(ValueError):
            ScenarioSet(
                counts=np.array([[1], [2]]),
                weights=np.array([0.2, 0.2]),
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ScenarioSet(
                counts=np.zeros((0, 2)), weights=np.zeros(0)
            )

    def test_normalized_weights_stored_untouched(self):
        # Satellite regression: weights already summing to exactly 1
        # must not be copied or renormalized (same object, same bits).
        w = np.array([0.5, 0.25, 0.25])
        sc = ScenarioSet(
            counts=np.array([[1], [2], [3]]), weights=w
        )
        assert sc.weights is w

    def test_slightly_off_weights_still_renormalized(self):
        w = np.array([0.5, 0.5 + 1e-8])
        sc = ScenarioSet(counts=np.array([[1], [2]]), weights=w)
        assert sc.weights is not w
        assert np.isclose(sc.weights.sum(), 1.0, atol=1e-12)


class TestScenarioSetCompressed:
    def duplicated(self):
        counts = np.array(
            [[2, 1], [0, 3], [2, 1], [1, 1], [0, 3], [2, 1]]
        )
        weights = np.array([0.1, 0.2, 0.15, 0.25, 0.05, 0.25])
        return ScenarioSet(counts=counts, weights=weights)

    def test_dedupes_and_aggregates_weights(self):
        sc = self.duplicated()
        c = sc.compressed()
        assert c.n_scenarios == 3
        # Lexicographically sorted unique rows.
        assert c.counts.tolist() == [[0, 3], [1, 1], [2, 1]]
        assert np.allclose(c.weights, [0.25, 0.25, 0.5])

    def test_preserves_expected_counts(self):
        sc = self.duplicated()
        assert np.allclose(
            sc.compressed().expected_counts(), sc.expected_counts()
        )

    def test_preserves_pal(self):
        from repro.core import all_orderings, pal_for_ordering

        sc = self.duplicated()
        c = sc.compressed()
        b = np.array([2.0, 3.0])
        costs = np.array([1.0, 2.0])
        for o in all_orderings(2):
            for rule in ("unit", "strict"):
                before = pal_for_ordering(o, b, sc, costs, 4.0, rule)
                after = pal_for_ordering(o, b, c, costs, 4.0, rule)
                assert np.abs(after - before).max() <= 1e-9

    def test_idempotent_and_deterministic(self):
        sc = self.duplicated()
        c = sc.compressed()
        assert c.compressed() is c
        again = self.duplicated().compressed()
        assert np.array_equal(again.counts, c.counts)
        assert np.array_equal(again.weights, c.weights)

    def test_no_duplicates_returns_self(self):
        sc = ScenarioSet(
            counts=np.array([[3, 1], [1, 2]]),
            weights=np.array([0.5, 0.5]),
        )
        assert sc.compressed() is sc

    def test_preserves_exact_flag(self):
        sc = ScenarioSet(
            counts=np.array([[1], [1], [2]]),
            weights=np.array([0.25, 0.25, 0.5]),
            exact=True,
        )
        c = sc.compressed()
        assert c.exact
        assert c.n_scenarios == 2

    def test_monte_carlo_sets_shrink(self, rng):
        joint = JointCountModel(
            [DiscretizedGaussian(3.0, 1.0), DiscretizedGaussian(2.0, 0.8)]
        )
        sc = joint.sample_scenarios(2000, rng)
        c = sc.compressed()
        assert c.n_scenarios < sc.n_scenarios
        assert np.isclose(c.weights.sum(), 1.0)


class TestJointCountModel:
    def test_exact_enumeration_matches_product(self):
        joint = JointCountModel(
            [EmpiricalCounts({0: 0.5, 1: 0.5}),
             EmpiricalCounts({2: 0.25, 3: 0.75})]
        )
        sc = joint.exact_scenarios()
        assert sc.exact
        assert sc.n_scenarios == 4
        # P(Z = (1, 3)) = 0.5 * 0.75.
        row = np.nonzero(
            (sc.counts == np.array([1, 3])).all(axis=1)
        )[0]
        assert np.isclose(sc.weights[row[0]], 0.375)

    def test_exact_scenario_count(self):
        joint = JointCountModel(
            [DiscretizedGaussian(6, 2.0), DiscretizedGaussian(5, 1.6)]
        )
        assert joint.n_exact_scenarios() == 11 * 9
        assert joint.exact_scenarios().n_scenarios == 99

    def test_exact_guard(self):
        joint = JointCountModel([ConstantCount(1), ConstantCount(2)])
        with pytest.raises(ValueError):
            joint.exact_scenarios(max_scenarios=0)

    def test_sampling_shape_and_support(self, rng):
        joint = JointCountModel(
            [DiscretizedGaussian(6, 2.0), ConstantCount(4)]
        )
        sc = joint.sample_scenarios(100, rng)
        assert not sc.exact
        assert sc.counts.shape == (100, 2)
        assert np.all(sc.counts[:, 1] == 4)
        assert sc.counts[:, 0].min() >= 1

    def test_scenarios_prefers_exact_when_small(self, rng):
        joint = JointCountModel([ConstantCount(1), ConstantCount(2)])
        sc = joint.scenarios(rng=rng)
        assert sc.exact

    def test_scenarios_samples_when_large(self, rng):
        joint = JointCountModel(
            [DiscretizedGaussian(100, 30.0) for _ in range(4)]
        )
        sc = joint.scenarios(rng=rng, n_samples=64,
                             prefer_exact_below=10)
        assert not sc.exact
        assert sc.n_scenarios == 64

    def test_scenarios_requires_rng_when_large(self):
        joint = JointCountModel(
            [DiscretizedGaussian(100, 30.0) for _ in range(4)]
        )
        with pytest.raises(ValueError):
            joint.scenarios(prefer_exact_below=10)

    def test_upper_bounds(self):
        joint = JointCountModel(
            [DiscretizedGaussian(6, 2.0), ConstantCount(3)]
        )
        assert joint.upper_bounds().tolist() == [11, 3]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            JointCountModel([])

    def test_rejects_bad_sample_count(self, rng):
        joint = JointCountModel([ConstantCount(1)])
        with pytest.raises(ValueError):
            joint.sample_scenarios(0, rng)
