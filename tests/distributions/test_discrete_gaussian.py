"""DiscretizedGaussian: Table II coverage, pmf shape, truncation."""

import numpy as np
import pytest

from repro.distributions import DiscretizedGaussian, coverage_halfwidth


class TestCoverageHalfwidth:
    def test_reproduces_table2_values(self):
        # Table II: std (2, 1.6, 1.3, 1) -> coverage +/- (5, 4, 3, 3).
        assert coverage_halfwidth(2.0) == 5
        assert coverage_halfwidth(1.6) == 4
        assert coverage_halfwidth(1.3) == 3
        assert coverage_halfwidth(1.0) == 3

    def test_minimum_width_is_one(self):
        assert coverage_halfwidth(0.01) == 1

    def test_scales_with_coverage(self):
        assert coverage_halfwidth(2.0, 0.9999) > coverage_halfwidth(2.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            coverage_halfwidth(0.0)
        with pytest.raises(ValueError):
            coverage_halfwidth(1.0, coverage=0.4)
        with pytest.raises(ValueError):
            coverage_halfwidth(1.0, coverage=1.0)


class TestDiscretizedGaussian:
    def test_syn_a_type1_support(self):
        model = DiscretizedGaussian(mean=6.0, std=2.0)
        assert model.min_count == 1
        assert model.max_count == 11

    def test_pmf_sums_to_one(self):
        model = DiscretizedGaussian(mean=5.0, std=1.6)
        assert np.isclose(model.support_pmf().sum(), 1.0)

    def test_pmf_zero_outside_support(self):
        model = DiscretizedGaussian(mean=6.0, std=2.0)
        assert model.pmf(0) == 0.0
        assert model.pmf(12) == 0.0
        assert model.pmf(-3) == 0.0

    def test_pmf_peaks_at_mean(self):
        model = DiscretizedGaussian(mean=6.0, std=2.0)
        pmf = model.support_pmf()
        assert np.argmax(pmf) == 6 - model.min_count

    def test_pmf_symmetry_around_integer_mean(self):
        model = DiscretizedGaussian(mean=6.0, std=2.0)
        assert np.isclose(model.pmf(4), model.pmf(8), rtol=1e-9)

    def test_mean_close_to_parameter(self):
        model = DiscretizedGaussian(mean=6.0, std=2.0)
        assert abs(model.mean() - 6.0) < 0.05

    def test_std_close_to_parameter(self):
        model = DiscretizedGaussian(mean=6.0, std=2.0)
        # Truncation shrinks the std slightly.
        assert 1.7 < model.std() <= 2.05

    def test_floor_clips_support(self):
        model = DiscretizedGaussian(mean=1.0, std=2.0, floor_count=0)
        assert model.min_count == 0
        assert np.isclose(model.support_pmf().sum(), 1.0)

    def test_floor_count_one(self):
        model = DiscretizedGaussian(mean=2.0, std=2.0, floor_count=1)
        assert model.min_count == 1

    def test_cdf_reaches_one(self):
        model = DiscretizedGaussian(mean=4.0, std=1.3)
        assert np.isclose(model.cdf(model.max_count), 1.0)
        assert model.cdf(model.min_count - 1) == 0.0

    def test_cdf_vectorized(self):
        model = DiscretizedGaussian(mean=4.0, std=1.0)
        values = model.cdf(np.array([0, 4, 7]))
        assert values.shape == (3,)
        assert np.all(np.diff(values) >= 0)

    def test_quantile_roundtrip(self):
        model = DiscretizedGaussian(mean=6.0, std=2.0)
        q = model.quantile(0.5)
        assert model.cdf(q) >= 0.5
        assert model.cdf(q - 1) < 0.5

    def test_sampling_matches_pmf(self, rng):
        model = DiscretizedGaussian(mean=4.0, std=1.0)
        samples = model.sample(rng, 20_000)
        assert samples.min() >= model.min_count
        assert samples.max() <= model.max_count
        assert abs(samples.mean() - model.mean()) < 0.05

    def test_rejects_nonpositive_std(self):
        with pytest.raises(ValueError):
            DiscretizedGaussian(mean=5.0, std=0.0)

    def test_rejects_negative_floor(self):
        with pytest.raises(ValueError):
            DiscretizedGaussian(mean=5.0, std=1.0, floor_count=-1)

    def test_repr_mentions_parameters(self):
        text = repr(DiscretizedGaussian(mean=6.0, std=2.0))
        assert "6.0" in text and "2.0" in text
