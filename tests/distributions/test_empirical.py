"""EmpiricalCounts: fitting, truncation, pmf queries."""

import numpy as np
import pytest

from repro.distributions import EmpiricalCounts


class TestFromSamples:
    def test_simple_fit(self):
        model = EmpiricalCounts.from_samples([2, 2, 3, 5])
        assert model.min_count == 2
        assert model.max_count == 5
        assert np.isclose(model.pmf(2), 0.5)
        assert np.isclose(model.pmf(3), 0.25)
        assert model.pmf(4) == 0.0

    def test_mean_matches_samples(self):
        samples = [1, 4, 4, 7, 9]
        model = EmpiricalCounts.from_samples(samples)
        assert np.isclose(model.mean(), np.mean(samples))

    def test_coverage_truncates_tail(self):
        samples = [1] * 98 + [50, 60]
        model = EmpiricalCounts.from_samples(samples, coverage=0.98)
        assert model.max_count == 1
        assert np.isclose(model.support_pmf().sum(), 1.0)

    def test_full_coverage_keeps_tail(self):
        model = EmpiricalCounts.from_samples([1] * 98 + [50, 60])
        assert model.max_count == 60

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalCounts.from_samples([])

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            EmpiricalCounts.from_samples([3, -1])

    def test_rejects_bad_coverage(self):
        with pytest.raises(ValueError):
            EmpiricalCounts.from_samples([1, 2], coverage=0.0)
        with pytest.raises(ValueError):
            EmpiricalCounts.from_samples([1, 2], coverage=1.5)


class TestTruncationEdgeCases:
    """Coverage at/near the ends of (0, 1], ties, degenerate fits.

    The simulator's rolling-empirical estimator refits through this
    path every period, so its corners must hold exactly.
    """

    def test_coverage_near_zero_keeps_smallest_count(self):
        model = EmpiricalCounts.from_samples(
            [3, 5, 5, 9], coverage=1e-9
        )
        assert model.min_count == 3
        assert model.max_count == 3
        assert np.isclose(model.pmf(3), 1.0)

    def test_coverage_exactly_at_a_cdf_step_keeps_that_count(self):
        # CDF: 1 -> 0.25, 2 -> 0.75, 3 -> 1.0.  Coverage 0.75 lands
        # exactly on the step at count 2, which must stay included.
        model = EmpiricalCounts.from_samples(
            [1, 2, 2, 3], coverage=0.75
        )
        assert model.max_count == 2
        assert np.isclose(model.pmf(1), 1 / 3)
        assert np.isclose(model.pmf(2), 2 / 3)
        assert np.isclose(model.support_pmf().sum(), 1.0)

    def test_coverage_just_below_one_drops_only_the_tail(self):
        samples = [1] * 997 + [2, 2, 50]
        model = EmpiricalCounts.from_samples(samples, coverage=0.999)
        assert model.max_count == 2
        assert np.isclose(model.support_pmf().sum(), 1.0)

    def test_coverage_one_is_exact(self):
        samples = [0, 0, 7, 7, 7, 100]
        model = EmpiricalCounts.from_samples(samples, coverage=1.0)
        assert model.min_count == 0
        assert model.max_count == 100
        assert np.isclose(model.pmf(7), 0.5)
        assert np.isclose(model.mean(), np.mean(samples))

    def test_tied_tail_probabilities_cut_at_first_reach(self):
        # Four equally likely counts; coverage 0.5 is reached exactly
        # at the second, so the tied tail {7, 9} is dropped whole.
        model = EmpiricalCounts.from_samples(
            [1, 3, 7, 9], coverage=0.5
        )
        assert model.max_count == 3
        assert np.isclose(model.pmf(1), 0.5)
        assert np.isclose(model.pmf(3), 0.5)

    def test_single_sample_fit_survives_any_coverage(self):
        for coverage in (1e-9, 0.5, 1.0):
            model = EmpiricalCounts.from_samples([4], coverage=coverage)
            assert model.min_count == 4
            assert model.max_count == 4
            assert np.isclose(model.pmf(4), 1.0)

    def test_all_identical_samples_truncate_to_themselves(self):
        model = EmpiricalCounts.from_samples([6] * 10, coverage=0.9)
        assert model.min_count == 6
        assert model.max_count == 6
        assert np.isclose(model.mean(), 6.0)

    def test_zero_count_support_is_legal(self):
        # A quiet alert type: most periods raise nothing at all.
        model = EmpiricalCounts.from_samples(
            [0] * 9 + [3], coverage=0.9
        )
        assert model.min_count == 0
        assert model.max_count == 0
        assert np.isclose(model.pmf(0), 1.0)

    def test_truncation_renormalizes(self):
        model = EmpiricalCounts.from_samples(
            [1, 1, 1, 2, 8, 8], coverage=0.66
        )
        assert model.max_count == 2
        total = model.pmf(1) + model.pmf(2)
        assert np.isclose(total, 1.0)
        assert np.isclose(model.pmf(1), 0.75)


class TestDirectConstruction:
    def test_from_pmf_mapping(self):
        model = EmpiricalCounts({0: 0.25, 2: 0.75})
        assert model.min_count == 0
        assert model.max_count == 2
        assert model.pmf(1) == 0.0

    def test_renormalizes(self):
        model = EmpiricalCounts({1: 2.0, 2: 2.0})
        assert np.isclose(model.pmf(1), 0.5)

    def test_rejects_empty_mapping(self):
        with pytest.raises(ValueError):
            EmpiricalCounts({})

    def test_rejects_negative_probability(self):
        with pytest.raises(ValueError):
            EmpiricalCounts({1: -0.5, 2: 1.5})

    def test_rejects_negative_support(self):
        with pytest.raises(ValueError):
            EmpiricalCounts({-1: 1.0})

    def test_sampling_within_support(self, rng):
        model = EmpiricalCounts({3: 0.5, 7: 0.5})
        samples = model.sample(rng, 500)
        assert set(np.unique(samples)) <= {3, 7}
