"""EmpiricalCounts: fitting, truncation, pmf queries."""

import numpy as np
import pytest

from repro.distributions import EmpiricalCounts


class TestFromSamples:
    def test_simple_fit(self):
        model = EmpiricalCounts.from_samples([2, 2, 3, 5])
        assert model.min_count == 2
        assert model.max_count == 5
        assert np.isclose(model.pmf(2), 0.5)
        assert np.isclose(model.pmf(3), 0.25)
        assert model.pmf(4) == 0.0

    def test_mean_matches_samples(self):
        samples = [1, 4, 4, 7, 9]
        model = EmpiricalCounts.from_samples(samples)
        assert np.isclose(model.mean(), np.mean(samples))

    def test_coverage_truncates_tail(self):
        samples = [1] * 98 + [50, 60]
        model = EmpiricalCounts.from_samples(samples, coverage=0.98)
        assert model.max_count == 1
        assert np.isclose(model.support_pmf().sum(), 1.0)

    def test_full_coverage_keeps_tail(self):
        model = EmpiricalCounts.from_samples([1] * 98 + [50, 60])
        assert model.max_count == 60

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalCounts.from_samples([])

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            EmpiricalCounts.from_samples([3, -1])

    def test_rejects_bad_coverage(self):
        with pytest.raises(ValueError):
            EmpiricalCounts.from_samples([1, 2], coverage=0.0)


class TestDirectConstruction:
    def test_from_pmf_mapping(self):
        model = EmpiricalCounts({0: 0.25, 2: 0.75})
        assert model.min_count == 0
        assert model.max_count == 2
        assert model.pmf(1) == 0.0

    def test_renormalizes(self):
        model = EmpiricalCounts({1: 2.0, 2: 2.0})
        assert np.isclose(model.pmf(1), 0.5)

    def test_rejects_empty_mapping(self):
        with pytest.raises(ValueError):
            EmpiricalCounts({})

    def test_rejects_negative_probability(self):
        with pytest.raises(ValueError):
            EmpiricalCounts({1: -0.5, 2: 1.5})

    def test_rejects_negative_support(self):
        with pytest.raises(ValueError):
            EmpiricalCounts({-1: 1.0})

    def test_sampling_within_support(self, rng):
        model = EmpiricalCounts({3: 0.5, 7: 0.5})
        samples = model.sample(rng, 500)
        assert set(np.unique(samples)) <= {3, 7}
