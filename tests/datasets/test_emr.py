"""EMR world, log simulation and the Rea A game."""

import numpy as np
import pytest

from repro.datasets import (
    EMR_BENEFITS,
    EMR_TYPE_NAMES,
    EMR_TYPE_STATS,
    EMRConfig,
    build_emr_world,
    rea_a,
    simulate_emr_log,
)
from repro.tdmt import filter_repeated_accesses, period_type_counts

SMALL = EMRConfig(
    n_days=4,
    pool_margin=1.05,
    benign_daily_mean=150.0,
    benign_daily_std=20.0,
    seed=99,
)


@pytest.fixture(scope="module")
def world():
    return build_emr_world(SMALL)


@pytest.fixture(scope="module")
def log(world):
    return simulate_emr_log(world)


class TestWorld:
    def test_pools_cover_targets(self, world):
        for k, (mean, std) in enumerate(EMR_TYPE_STATS):
            assert len(world.pair_pools[k]) >= mean + 4 * std

    def test_pool_pairs_have_exact_type(self, world):
        # Every planted pair must label as exactly its pool's type; the
        # strict scheme raises if an unnamed combination ever arises.
        for k, pool in enumerate(world.pair_pools):
            for employee, patient in pool[:25]:
                assert world.engine.label_pair(employee, patient) == \
                    EMR_TYPE_NAMES[k]

    def test_benign_pairs_are_benign(self, world):
        for employee, patient in world.benign_pairs[:25]:
            assert world.engine.label_pair(employee, patient) is None

    def test_disjoint_roles(self, world):
        assert not set(world.employees) & set(world.patients)


class TestLog:
    def test_repeat_fraction_near_paper(self, log):
        assert abs(log.repeat_fraction - 0.795) < 0.05

    def test_periods_in_range(self, log):
        periods = {event.period for event in log.events}
        assert periods <= set(range(SMALL.n_days))

    def test_calibration_rough(self, world, log):
        distinct, _ = filter_repeated_accesses(log.events)
        alerts = world.engine.label_events(distinct)
        counts = period_type_counts(
            alerts, EMR_TYPE_NAMES, SMALL.n_days
        )
        for name, (mean, std) in zip(EMR_TYPE_NAMES, EMR_TYPE_STATS, strict=True):
            observed = counts[name].mean()
            # 4 periods only: allow a wide tolerance band.
            assert abs(observed - mean) < max(3.0 * std, 10.0)


class TestReaAGame:
    @pytest.fixture(scope="class")
    def game(self):
        return rea_a(budget=40, config=SMALL)

    def test_dimensions(self, game):
        assert game.n_types == 7
        assert game.n_adversaries == 50
        assert game.n_victims == 50

    def test_published_distributions(self, game):
        for model, (mean, std) in zip(
            game.counts.marginals, EMR_TYPE_STATS, strict=True
        ):
            assert model.mean_param == pytest.approx(mean)
            assert model.std_param == pytest.approx(std)

    def test_every_type_present_in_grid(self, game):
        matrix = game.attack_map.deterministic_types()
        present = set(matrix[matrix >= 0].tolist())
        assert present == set(range(7))

    def test_benefit_vector(self, game):
        matrix = game.attack_map.deterministic_types()
        benefit = game.payoffs.benefit
        for t in range(7):
            mask = matrix == t
            assert np.all(benefit[mask] == EMR_BENEFITS[t])

    def test_refrain_allowed(self, game):
        assert game.payoffs.attackers_can_refrain

    def test_simulated_distributions_mode(self):
        game = rea_a(budget=40, config=SMALL,
                     distributions="simulated")
        means = [m.mean() for m in game.counts.marginals]
        # Learned means should be in the right ballpark of Table VIII.
        assert means[0] > 50.0  # same-last-name is the biggest type

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            rea_a(distributions="guesswork", config=SMALL)
