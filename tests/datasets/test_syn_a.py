"""Syn A: exact Table II reproduction."""

import numpy as np
import pytest

from repro.core import BENIGN
from repro.datasets import (
    SYN_A_BENEFITS,
    SYN_A_MEANS,
    SYN_A_RULES,
    SYN_A_STDS,
    syn_a,
)


class TestStructure:
    def test_dimensions(self):
        game = syn_a()
        assert game.n_types == 4
        assert game.n_adversaries == 5
        assert game.n_victims == 8

    def test_count_model_matches_table2a(self):
        game = syn_a()
        for model, mean, std in zip(
            game.counts.marginals, SYN_A_MEANS, SYN_A_STDS, strict=True
        ):
            assert model.mean_param == mean
            assert model.std_param == std

    def test_coverage_halfwidths(self):
        # Table IIa's 99.5% coverage row: +/- (5, 4, 3, 3).
        game = syn_a()
        halves = [m.halfwidth for m in game.counts.marginals]
        assert halves == [5, 4, 3, 3]

    def test_upper_bounds_match_paper(self):
        # J = mean + coverage = [11, 9, 7, 7].
        game = syn_a()
        assert game.counts.upper_bounds().tolist() == [11, 9, 7, 7]

    def test_rule_matrix_matches_table2b(self):
        game = syn_a()
        matrix = game.attack_map.deterministic_types()
        assert np.array_equal(matrix, np.asarray(SYN_A_RULES))
        # Spot-check the published cells (1-indexed in the paper).
        assert matrix[0, 0] == BENIGN  # e1/r1 is "-"
        assert matrix[0, 7] == 0       # e1/r8 is type 1
        assert matrix[4, 3] == 3       # e5/r4 is type 4

    def test_benefits_follow_types(self):
        game = syn_a()
        matrix = game.attack_map.deterministic_types()
        benefit = game.payoffs.benefit
        for e in range(5):
            for v in range(8):
                if matrix[e, v] == BENIGN:
                    assert benefit[e, v] == 0.0
                else:
                    assert benefit[e, v] == SYN_A_BENEFITS[
                        matrix[e, v]
                    ]

    def test_penalty_and_costs(self):
        game = syn_a()
        assert np.all(game.payoffs.penalty == 4.0)
        assert np.all(game.payoffs.attack_cost == 0.4)
        assert np.all(game.costs == 1.0)

    def test_no_refrain_option(self):
        # Table III's objective goes negative: attackers must attack.
        assert not syn_a().payoffs.attackers_can_refrain

    def test_budget_parameter(self):
        assert syn_a(budget=14).budget == 14.0

    def test_exact_scenarios_available(self):
        game = syn_a()
        assert game.counts.n_exact_scenarios() == 11 * 9 * 7 * 7


class TestPublishedValues:
    """Anchors against Table III at the published thresholds."""

    @pytest.mark.parametrize(
        "budget,thresholds,paper_value,tolerance",
        [
            (2, [1, 1, 1, 1], 12.2945, 0.1),
            (4, [2, 1, 1, 2], 7.7176, 0.15),
            (6, [2, 2, 2, 2], 3.2651, 0.2),
        ],
    )
    def test_objective_close_to_paper(
        self, budget, thresholds, paper_value, tolerance
    ):
        from repro.solvers import EnumerationSolver

        game = syn_a(budget=budget)
        scenarios = game.scenario_set()
        solution = EnumerationSolver(game, scenarios).solve(
            np.asarray(thresholds, dtype=float)
        )
        assert solution.objective == pytest.approx(
            paper_value, abs=tolerance
        )
