"""Credit synthesizer, Table IX rules, and the Rea B game."""

import numpy as np
import pytest

from repro.core import BENIGN
from repro.datasets import (
    CREDIT_BENEFITS,
    CREDIT_PURPOSES,
    CREDIT_TYPE_NAMES,
    CREDIT_TYPE_STATS,
    alert_type_for,
    rea_b,
    simulate_credit_batches,
    synthesize_applicants,
)


class TestAlertRules:
    def test_no_checking_fires_for_every_purpose(self):
        attrs = {
            "checking_status": "none",
            "job": "skilled",
            "credit_history": "existing-paid",
        }
        for purpose in CREDIT_PURPOSES:
            assert alert_type_for(attrs, purpose) == 0

    def test_overdrawn_car_education(self):
        attrs = {
            "checking_status": "<0",
            "job": "skilled",
            "credit_history": "existing-paid",
        }
        assert alert_type_for(attrs, "new-car") == 1
        assert alert_type_for(attrs, "education") == 1
        assert alert_type_for(attrs, "repairs") == BENIGN

    def test_positive_unskilled_education(self):
        attrs = {
            "checking_status": "0<=x<200",
            "job": "unskilled",
            "credit_history": "existing-paid",
        }
        assert alert_type_for(attrs, "education") == 2

    def test_positive_unskilled_appliance(self):
        attrs = {
            "checking_status": ">=200",
            "job": "unskilled",
            "credit_history": "all-paid",
        }
        for purpose in (
            "furniture-equipment", "radio-television",
            "domestic-appliances",
        ):
            assert alert_type_for(attrs, purpose) == 3

    def test_positive_critical_business(self):
        attrs = {
            "checking_status": "0<=x<200",
            "job": "skilled",
            "credit_history": "critical",
        }
        assert alert_type_for(attrs, "business") == 4
        assert alert_type_for(attrs, "repairs") == BENIGN

    def test_priority_no_checking_wins(self):
        # A no-checking unskilled education applicant is type 1, not 3.
        attrs = {
            "checking_status": "none",
            "job": "unskilled",
            "credit_history": "critical",
        }
        assert alert_type_for(attrs, "education") == 0

    def test_rejects_unknown_purpose(self):
        attrs = {
            "checking_status": "none",
            "job": "skilled",
            "credit_history": "critical",
        }
        with pytest.raises(ValueError):
            alert_type_for(attrs, "yacht")


class TestSynthesizer:
    def test_attribute_domains(self, rng):
        for applicant in synthesize_applicants(200, rng):
            assert applicant.checking_status in (
                "<0", "0<=x<200", ">=200", "none"
            )
            assert applicant.declared_purpose in CREDIT_PURPOSES
            assert 4 <= applicant.duration_months <= 72
            assert 19 <= applicant.age <= 75

    def test_marginals_roughly_statlog(self, rng):
        applicants = synthesize_applicants(4000, rng)
        none_share = np.mean(
            [a.checking_status == "none" for a in applicants]
        )
        assert abs(none_share - 0.394) < 0.03

    def test_rejects_bad_count(self, rng):
        with pytest.raises(ValueError):
            synthesize_applicants(0, rng)

    def test_batch_counts_near_table9(self, rng):
        counts = simulate_credit_batches(n_periods=6, rng=rng)
        for name, (mean, _) in zip(
            CREDIT_TYPE_NAMES, CREDIT_TYPE_STATS, strict=True
        ):
            observed = counts[name].mean()
            assert abs(observed - mean) < max(0.5 * mean, 10.0)


class TestReaBGame:
    @pytest.fixture(scope="class")
    def game(self):
        return rea_b(budget=100)

    def test_dimensions(self, game):
        assert game.n_types == 5
        assert game.n_adversaries == 100
        assert game.n_victims == 8

    def test_every_adversary_generates_an_alert(self, game):
        matrix = game.attack_map.deterministic_types()
        assert np.all((matrix != BENIGN).any(axis=1))

    def test_published_distributions(self, game):
        for model, (mean, _std) in zip(
            game.counts.marginals, CREDIT_TYPE_STATS, strict=True
        ):
            assert model.mean_param == pytest.approx(mean)

    def test_benefits(self, game):
        matrix = game.attack_map.deterministic_types()
        for t in range(5):
            mask = matrix == t
            if mask.any():
                assert np.all(
                    game.payoffs.benefit[mask] == CREDIT_BENEFITS[t]
                )

    def test_penalty_and_refrain(self, game):
        assert np.all(game.payoffs.penalty == 20.0)
        assert game.payoffs.attackers_can_refrain

    def test_simulated_mode(self):
        game = rea_b(budget=50, distributions="simulated",
                     n_periods=4)
        assert game.counts.marginals[0].mean() > 200.0

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            rea_b(distributions="guesswork")
