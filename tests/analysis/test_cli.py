"""The command-line experiment runner."""

import pytest

from repro.analysis.cli import DATASETS, EXPERIMENTS, main


class TestRegistry:
    def test_covers_every_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "table3", "table4", "table5", "table6", "table7",
            "fig1", "fig2",
        }

    def test_covers_every_dataset(self):
        assert set(DATASETS) == {"syn_a", "rea_a", "rea_b"}


class TestSolverMode:
    def test_list_solvers(self, capsys):
        assert main(["--list-solvers"]) == 0
        out = capsys.readouterr().out
        assert "ishm" in out
        assert "bruteforce" in out

    def test_solver_dispatch_writes_artifact(self, tmp_path):
        code = main(
            [
                "--solver", "ishm",
                "--dataset", "syn_a",
                "--budget", "2",
                "--config", "step_size=0.5",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        text = (tmp_path / "solve_ishm.txt").read_text()
        assert "solver=ishm" in text
        assert "step_size=0.5" in text
        assert "lp_calls" in text

    def test_baseline_dispatch(self, tmp_path):
        code = main(
            [
                "--solver", "benefit-greedy",
                "--budget", "2",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "solve_benefit-greedy.txt").exists()

    def test_malformed_config_pair(self, tmp_path):
        with pytest.raises(SystemExit, match="key=value"):
            main(
                [
                    "--solver", "ishm",
                    "--config", "step_size",
                    "--out", str(tmp_path),
                ]
            )

    def test_empty_config_key_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="key=value"):
            main(
                [
                    "--solver", "ishm",
                    "--config", "=0.5",
                    "--out", str(tmp_path),
                ]
            )

    def test_duplicate_config_key_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="more than once"):
            main(
                [
                    "--solver", "ishm",
                    "--config", "step_size=0.5", "step_size=0.4",
                    "--out", str(tmp_path),
                ]
            )

    def test_config_value_may_contain_equals(self):
        # Split on the first '=' only; the rest stays in the value.
        from repro.analysis.cli import _parse_config_pairs

        parsed = _parse_config_pairs(["tie_break=a=b", "seed=3"])
        assert parsed == {"tie_break": "a=b", "seed": "3"}

    def test_unknown_config_option_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="--config error"):
            main(
                [
                    "--solver", "ishm",
                    "--config", "stepsize=0.5",
                    "--out", str(tmp_path),
                ]
            )

    def test_unknown_solver_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--solver", "gradient", "--out", str(tmp_path)])

    def test_solver_conflicts_with_experiment_flags(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "--solver", "ishm",
                    "--only", "table3",
                    "--out", str(tmp_path),
                ]
            )


class TestSimMode:
    def test_list_sim_plugins(self, capsys):
        assert main(["--list-sim-plugins"]) == 0
        out = capsys.readouterr().out
        assert "event sources" in out
        assert "rolling-empirical" in out
        assert "best-response" in out

    def test_sim_writes_artifact(self, tmp_path):
        code = main(
            [
                "--sim",
                "--dataset", "syn_a",
                "--budget", "2",
                "--periods", "2",
                "--config", "step_size=0.5",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        text = (tmp_path / "sim_syn_a.txt").read_text()
        assert "dataset=syn_a" in text
        assert "simulated 2 periods" in text
        assert "E[loss]" in text

    def test_sim_config_options_threaded(self, tmp_path):
        code = main(
            [
                "--sim",
                "--dataset", "syn_a",
                "--budget", "2",
                "--periods", "3",
                "--config", "step_size=0.5",
                "--sim-config",
                "estimator=rolling-empirical",
                "estimator.min_periods=2",
                "warm_start=false",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        text = (tmp_path / "sim_syn_a.txt").read_text()
        assert "estimator='rolling-empirical'" in text
        assert "warm_start=False" in text

    def test_sim_config_merges_with_dotted_solver_options(self, tmp_path):
        # solver.* pairs survive an explicit --config; per-key --config
        # wins.
        code = main(
            [
                "--sim",
                "--dataset", "syn_a",
                "--budget", "2",
                "--periods", "2",
                "--sim-config", "solver.step_size=0.5",
                "--config", "inner=enumeration",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        text = (tmp_path / "sim_syn_a.txt").read_text()
        assert "'step_size': '0.5'" in text
        assert "'inner': 'enumeration'" in text

    def test_sim_seed_reaches_trajectory_and_solver(self, tmp_path):
        code = main(
            [
                "--sim",
                "--dataset", "syn_a",
                "--budget", "2",
                "--periods", "2",
                "--seed", "11",
                "--config", "step_size=0.5",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        text = (tmp_path / "sim_syn_a.txt").read_text()
        assert "seed=11" in text
        assert "solver_seed=11" in text

    def test_sim_config_errors_name_their_flag(self, tmp_path):
        with pytest.raises(SystemExit, match="--sim-config expects"):
            main(
                [
                    "--sim",
                    "--sim-config", "warm_start",
                    "--out", str(tmp_path),
                ]
            )

    def test_sim_bad_plugin_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="--sim-config error"):
            main(
                [
                    "--sim",
                    "--sim-config", "estimator=psychic",
                    "--out", str(tmp_path),
                ]
            )

    def test_sim_bad_option_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="--sim-config error"):
            main(
                [
                    "--sim",
                    "--sim-config", "n_periods=0",
                    "--out", str(tmp_path),
                ]
            )

    def test_bad_solver_option_blames_the_supplying_flag(self, tmp_path):
        # The broken value comes from --sim-config even though --config
        # is also present.
        with pytest.raises(SystemExit, match="--sim-config error"):
            main(
                [
                    "--sim",
                    "--sim-config", "solver.step_size=abc",
                    "--config", "inner=cggs",
                    "--out", str(tmp_path),
                ]
            )
        with pytest.raises(SystemExit, match="--config error"):
            main(
                [
                    "--sim",
                    "--config", "bogus=1",
                    "--out", str(tmp_path),
                ]
            )

    def test_sim_flags_require_sim_mode(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--periods", "5", "--out", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(
                [
                    "--sim-config", "estimator=psychic",
                    "--out", str(tmp_path),
                ]
            )

    def test_config_requires_a_solver_mode(self, tmp_path):
        # In experiment mode --config would be silently dropped;
        # error instead.
        with pytest.raises(SystemExit):
            main(
                [
                    "--config", "step_size=0.2",
                    "--only", "table3",
                    "--out", str(tmp_path),
                ]
            )

    def test_sim_conflicts_with_experiment_flags(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "--sim",
                    "--only", "table3",
                    "--out", str(tmp_path),
                ]
            )


class TestServeMode:
    def test_serve_conflicts_with_other_modes(self):
        with pytest.raises(SystemExit):
            main(["--serve", "--sim"])
        with pytest.raises(SystemExit):
            main(["--serve", "--only", "table3"])
        with pytest.raises(SystemExit):
            main(["--serve", "--full"])

    def test_serve_config_requires_serve_mode(self):
        with pytest.raises(SystemExit):
            main(["--serve-config", "drift_threshold=0.2"])

    def test_bad_serve_config_is_clean_error(self):
        with pytest.raises(SystemExit, match="--serve-config error"):
            main(["--serve", "--serve-config", "no_such_option=1"])
        with pytest.raises(SystemExit, match="--serve-config error"):
            main(["--serve", "--serve-config", "estimator=psychic"])

    def test_malformed_serve_config_pair(self):
        with pytest.raises(SystemExit, match="key=value"):
            main(["--serve", "--serve-config", "drift_threshold"])


class TestMain:
    def test_writes_selected_artifact(self, tmp_path, monkeypatch):
        # Patch in a stub experiment so the CLI test stays fast.
        monkeypatch.setitem(
            EXPERIMENTS, "table3", lambda full, seed: "stub-table"
        )
        code = main(["--out", str(tmp_path), "--only", "table3"])
        assert code == 0
        artifact = tmp_path / "table3.txt"
        assert artifact.read_text() == "stub-table\n"

    def test_full_flag_forwarded(self, tmp_path, monkeypatch):
        seen = {}

        def probe(full, seed):
            seen["full"] = full
            return "x"

        monkeypatch.setitem(EXPERIMENTS, "fig1", probe)
        main(["--out", str(tmp_path), "--only", "fig1", "--full"])
        assert seen["full"] is True

    def test_seed_flag_forwarded(self, tmp_path, monkeypatch):
        seen = {}

        def probe(full, seed):
            seen["seed"] = seed
            return "x"

        monkeypatch.setitem(EXPERIMENTS, "fig1", probe)
        main(["--out", str(tmp_path), "--only", "fig1", "--seed", "17"])
        assert seen["seed"] == 17

    def test_rejects_unknown_experiment(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--out", str(tmp_path), "--only", "table99"])

    def test_runs_real_small_experiment(self, tmp_path, monkeypatch):
        # Shrink table3 to one budget to keep this an actual end-to-end
        # check without the full fast grid.
        from repro.analysis import run_table3

        monkeypatch.setitem(
            EXPERIMENTS,
            "table3",
            lambda full, seed: run_table3(
                budgets=(2,), seed=seed
            ).to_text(),
        )
        main(["--out", str(tmp_path), "--only", "table3"])
        text = (tmp_path / "table3.txt").read_text()
        assert "Optimal Threshold" in text
        assert "[1, 1, 1, 1]" in text
