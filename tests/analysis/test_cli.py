"""The command-line experiment runner."""

import pytest

from repro.analysis.cli import EXPERIMENTS, main


class TestRegistry:
    def test_covers_every_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "table3", "table4", "table5", "table6", "table7",
            "fig1", "fig2",
        }


class TestMain:
    def test_writes_selected_artifact(self, tmp_path, monkeypatch):
        # Patch in a stub experiment so the CLI test stays fast.
        monkeypatch.setitem(
            EXPERIMENTS, "table3", lambda full: "stub-table"
        )
        code = main(["--out", str(tmp_path), "--only", "table3"])
        assert code == 0
        artifact = tmp_path / "table3.txt"
        assert artifact.read_text() == "stub-table\n"

    def test_full_flag_forwarded(self, tmp_path, monkeypatch):
        seen = {}

        def probe(full):
            seen["full"] = full
            return "x"

        monkeypatch.setitem(EXPERIMENTS, "fig1", probe)
        main(["--out", str(tmp_path), "--only", "fig1", "--full"])
        assert seen["full"] is True

    def test_rejects_unknown_experiment(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--out", str(tmp_path), "--only", "table99"])

    def test_runs_real_small_experiment(self, tmp_path, monkeypatch):
        # Shrink table3 to one budget to keep this an actual end-to-end
        # check without the full fast grid.
        from repro.analysis import run_table3

        monkeypatch.setitem(
            EXPERIMENTS,
            "table3",
            lambda full: run_table3(budgets=(2,)).to_text(),
        )
        main(["--out", str(tmp_path), "--only", "table3"])
        text = (tmp_path / "table3.txt").read_text()
        assert "Optimal Threshold" in text
        assert "[1, 1, 1, 1]" in text
