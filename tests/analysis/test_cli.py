"""The command-line experiment runner."""

import pytest

from repro.analysis.cli import DATASETS, EXPERIMENTS, main


class TestRegistry:
    def test_covers_every_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "table3", "table4", "table5", "table6", "table7",
            "fig1", "fig2",
        }

    def test_covers_every_dataset(self):
        assert set(DATASETS) == {"syn_a", "rea_a", "rea_b"}


class TestSolverMode:
    def test_list_solvers(self, capsys):
        assert main(["--list-solvers"]) == 0
        out = capsys.readouterr().out
        assert "ishm" in out
        assert "bruteforce" in out

    def test_solver_dispatch_writes_artifact(self, tmp_path):
        code = main(
            [
                "--solver", "ishm",
                "--dataset", "syn_a",
                "--budget", "2",
                "--config", "step_size=0.5",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        text = (tmp_path / "solve_ishm.txt").read_text()
        assert "solver=ishm" in text
        assert "step_size=0.5" in text
        assert "lp_calls" in text

    def test_baseline_dispatch(self, tmp_path):
        code = main(
            [
                "--solver", "benefit-greedy",
                "--budget", "2",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "solve_benefit-greedy.txt").exists()

    def test_malformed_config_pair(self, tmp_path):
        with pytest.raises(SystemExit, match="key=value"):
            main(
                [
                    "--solver", "ishm",
                    "--config", "step_size",
                    "--out", str(tmp_path),
                ]
            )

    def test_empty_config_key_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="key=value"):
            main(
                [
                    "--solver", "ishm",
                    "--config", "=0.5",
                    "--out", str(tmp_path),
                ]
            )

    def test_duplicate_config_key_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="more than once"):
            main(
                [
                    "--solver", "ishm",
                    "--config", "step_size=0.5", "step_size=0.4",
                    "--out", str(tmp_path),
                ]
            )

    def test_config_value_may_contain_equals(self):
        # Split on the first '=' only; the rest stays in the value.
        from repro.analysis.cli import _parse_config_pairs

        parsed = _parse_config_pairs(["tie_break=a=b", "seed=3"])
        assert parsed == {"tie_break": "a=b", "seed": "3"}

    def test_unknown_config_option_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="--config error"):
            main(
                [
                    "--solver", "ishm",
                    "--config", "stepsize=0.5",
                    "--out", str(tmp_path),
                ]
            )

    def test_unknown_solver_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--solver", "gradient", "--out", str(tmp_path)])

    def test_solver_conflicts_with_experiment_flags(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "--solver", "ishm",
                    "--only", "table3",
                    "--out", str(tmp_path),
                ]
            )


class TestMain:
    def test_writes_selected_artifact(self, tmp_path, monkeypatch):
        # Patch in a stub experiment so the CLI test stays fast.
        monkeypatch.setitem(
            EXPERIMENTS, "table3", lambda full: "stub-table"
        )
        code = main(["--out", str(tmp_path), "--only", "table3"])
        assert code == 0
        artifact = tmp_path / "table3.txt"
        assert artifact.read_text() == "stub-table\n"

    def test_full_flag_forwarded(self, tmp_path, monkeypatch):
        seen = {}

        def probe(full):
            seen["full"] = full
            return "x"

        monkeypatch.setitem(EXPERIMENTS, "fig1", probe)
        main(["--out", str(tmp_path), "--only", "fig1", "--full"])
        assert seen["full"] is True

    def test_rejects_unknown_experiment(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--out", str(tmp_path), "--only", "table99"])

    def test_runs_real_small_experiment(self, tmp_path, monkeypatch):
        # Shrink table3 to one budget to keep this an actual end-to-end
        # check without the full fast grid.
        from repro.analysis import run_table3

        monkeypatch.setitem(
            EXPERIMENTS,
            "table3",
            lambda full: run_table3(budgets=(2,)).to_text(),
        )
        main(["--out", str(tmp_path), "--only", "table3"])
        text = (tmp_path / "table3.txt").read_text()
        assert "Optimal Threshold" in text
        assert "[1, 1, 1, 1]" in text
