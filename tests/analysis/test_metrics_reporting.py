"""Analysis metrics and text reporting."""

import numpy as np
import pytest

from repro.analysis import (
    exploration_ratio,
    format_thresholds,
    mean_relative_precision,
    relative_errors,
    render_series,
    render_table,
)


class TestMetrics:
    def test_relative_errors(self):
        errors = relative_errors([11.0, 9.0], [10.0, 10.0])
        assert np.allclose(errors, [0.1, 0.1])

    def test_precision_complement(self):
        gamma = mean_relative_precision([11.0, 9.0], [10.0, 10.0])
        assert gamma == pytest.approx(0.9)

    def test_perfect_precision(self):
        assert mean_relative_precision([5.0], [5.0]) == 1.0

    def test_negative_optimal_values(self):
        # Table III objectives go negative; |S| handles the sign.
        gamma = mean_relative_precision([-2.0], [-2.1314])
        assert 0.9 < gamma < 1.0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_errors([1.0], [1.0, 2.0])

    def test_rejects_zero_optimal(self):
        with pytest.raises(ValueError):
            relative_errors([1.0], [0.0])

    def test_exploration_ratio(self):
        ratios = exploration_ratio([128, 64], 7680)
        assert np.allclose(ratios, [128 / 7680, 64 / 7680])

    def test_exploration_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            exploration_ratio([1], 0)


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"], [["a", 1], ["bb", 22]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_format_thresholds_integers(self):
        assert format_thresholds([3.0, 3.0]) == "[3, 3]"

    def test_format_thresholds_fractional(self):
        assert format_thresholds([2.5]) == "[2.50]"

    def test_render_series(self):
        text = render_series("loss", [10, 20], [1.5, 0.25])
        assert "loss" in text and "(10, 1.50)" in text
