"""Experiment runners on reduced grids (the bench harness building blocks)."""

import numpy as np
import pytest

from repro.analysis import (
    run_ishm_grid,
    run_loss_figure,
    run_table3,
    run_table6,
)
from repro.datasets import syn_a


@pytest.fixture(scope="module")
def small_table3():
    return run_table3(budgets=(2, 10))


@pytest.fixture(scope="module")
def small_grid():
    return run_ishm_grid(budgets=(2, 10), step_sizes=(0.25, 0.5))


class TestTable3:
    def test_objectives_decrease_with_budget(self, small_table3):
        objectives = small_table3.objectives()
        assert objectives[0] > objectives[1]

    def test_b2_matches_paper_thresholds(self, small_table3):
        row = small_table3.rows[0]
        assert row.thresholds.astype(int).tolist() == [1, 1, 1, 1]
        assert row.objective == pytest.approx(12.2945, abs=0.1)

    def test_mixed_strategy_valid(self, small_table3):
        for row in small_table3.rows:
            assert np.isclose(sum(row.support_probabilities), 1.0)
            assert len(row.support_orderings) == len(
                row.support_probabilities
            )

    def test_to_text_is_table_shaped(self, small_table3):
        text = small_table3.to_text()
        assert "Optimal Threshold" in text
        assert "12." in text


class TestIshmGrid:
    def test_grid_shape(self, small_grid):
        assert len(small_grid.cells) == 2
        assert len(small_grid.cells[0]) == 2

    def test_objectives_decrease_with_budget(self, small_grid):
        for j in range(2):
            assert small_grid.cells[0][j].objective > \
                small_grid.cells[1][j].objective

    def test_lp_calls_positive(self, small_grid):
        for row in small_grid.lp_call_grid():
            assert all(c > 0 for c in row)

    def test_coarser_step_explores_less(self, small_grid):
        # Table VII trend: larger eps -> fewer vectors checked.
        calls = small_grid.lp_call_grid()
        assert calls[0][1] <= calls[0][0]
        assert calls[1][1] <= calls[1][0]

    def test_text_renderings(self, small_grid):
        assert "eps=0.25" in small_grid.to_text()
        assert "eps" in small_grid.exploration_text()


class TestTable6:
    def test_gamma_in_unit_range(self, small_table3, small_grid):
        result = run_table6(small_table3, small_grid)
        assert all(0.0 < g <= 1.0 for g in result.gamma_ishm)

    def test_high_precision_at_fine_step(self, small_table3,
                                         small_grid):
        result = run_table6(small_table3, small_grid)
        # eps=0.25 should be close to optimal on these budgets.
        assert result.gamma_ishm[0] > 0.95

    def test_includes_cggs_when_given(self, small_table3, small_grid):
        result = run_table6(small_table3, small_grid,
                            cggs_grid=small_grid)
        assert result.gamma_cggs == result.gamma_ishm
        assert "gamma2" in result.to_text()


class TestLossFigure:
    def test_small_figure_runs(self):
        curves = run_loss_figure(
            game_factory=lambda budget: syn_a(budget=budget),
            dataset="syn-a",
            budgets=(2, 20),
            step_sizes=(0.5,),
            n_scenarios=200,
            n_random_orderings=12,
            n_threshold_draws=4,
        )
        proposed = curves.proposed[0.5]
        assert len(proposed) == 2
        assert proposed[0] > proposed[1]  # loss falls with budget
        # The proposed policy is never beaten by the baselines.
        assert proposed[0] <= curves.random_orders[0] + 1e-9
        assert proposed[0] <= curves.benefit_greedy[0] + 1e-9
        assert "proposed" in curves.to_text()
