"""Batched threshold pricing: dedupe, fan-out, and serial identity.

The contract under test is the PR's headline guarantee: for
enumeration-backed pricing, ``workers > 1`` (process-pool fan-out with
vectorized kernel construction) returns bit-for-bit the same solutions,
policies and probe counts as the serial ``workers = 1`` path at equal
seed.
"""

import numpy as np
import pytest

from repro.core.detection import pal_for_ordering, pal_for_ordering_batch
from repro.engine import AuditEngine, FixedSolveCache
from repro.solvers.enumeration import EnumerationSolver
from repro.solvers.ishm import run_iterative_shrink


def _policies_equal(a, b) -> bool:
    return (
        tuple(map(tuple, a.orderings)) == tuple(map(tuple, b.orderings))
        and np.array_equal(a.probabilities, b.probabilities)
        and np.array_equal(a.thresholds, b.thresholds)
    )


@pytest.fixture()
def batch(tiny_game):
    rng = np.random.default_rng(7)
    upper = np.ceil(tiny_game.threshold_upper_bounds())
    return rng.integers(0, upper + 1, size=(6, tiny_game.n_types)).astype(
        np.float64
    )


class TestBatchedKernel:
    def test_matches_serial_kernel_bitwise(
        self, tiny_game, tiny_scenarios, batch
    ):
        # Reduction-order contract: both kernels close the expectation
        # with (ratio * weights).sum(axis=-1) — numpy's pairwise
        # reduction, whose result depends only on the row length — so
        # the batched rows equal the serial rows *bitwise*, not merely
        # approximately.  A BLAS dot would break this across shapes.
        for ordering in [(0, 1), (1, 0), (1,)]:
            rows = pal_for_ordering_batch(
                ordering,
                batch,
                tiny_scenarios,
                tiny_game.costs,
                tiny_game.budget,
            )
            reference = np.stack(
                [
                    pal_for_ordering(
                        ordering,
                        b,
                        tiny_scenarios,
                        tiny_game.costs,
                        tiny_game.budget,
                    )
                    for b in batch
                ]
            )
            assert np.array_equal(rows, reference)

    def test_rejects_one_dimensional_input(
        self, tiny_game, tiny_scenarios
    ):
        with pytest.raises(ValueError, match=r"\(B, T\)"):
            pal_for_ordering_batch(
                (0, 1),
                np.array([1.0, 2.0]),
                tiny_scenarios,
                tiny_game.costs,
                tiny_game.budget,
            )

    def test_solve_batch_equals_mapped_solve(
        self, tiny_game, tiny_scenarios, batch
    ):
        solver = EnumerationSolver(tiny_game, tiny_scenarios)
        batched = solver.solve_batch(batch)
        for b, solution in zip(batch, batched, strict=True):
            reference = solver.solve(b)
            assert solution.objective == reference.objective
            assert _policies_equal(solution.policy, reference.policy)


class TestPriceBatch:
    def test_dedupes_within_and_across_batches(
        self, tiny_game, tiny_scenarios, batch
    ):
        cache = FixedSolveCache(tiny_game, tiny_scenarios)
        doubled = np.concatenate([batch, batch])
        solutions = cache.price_batch(doubled)
        assert len(solutions) == len(doubled)
        unique = len({tuple(b) for b in batch.tolist()})
        assert cache.misses == unique
        assert cache.hits == len(doubled) - unique
        # Repricing is all hits, and single-vector solves share the memo.
        cache.price_batch(batch)
        assert cache.misses == unique
        single = cache.solver()(batch[0])
        assert single is solutions[0]

    def test_single_vector_input_accepted(
        self, tiny_game, tiny_scenarios
    ):
        cache = FixedSolveCache(tiny_game, tiny_scenarios)
        solutions = cache.price_batch(np.array([2.0, 2.0]))
        assert len(solutions) == 1

    def test_rejects_wrong_width(self, tiny_game, tiny_scenarios):
        cache = FixedSolveCache(tiny_game, tiny_scenarios)
        with pytest.raises(ValueError, match="batch must have shape"):
            cache.price_batch(np.zeros((3, 5)))

    def test_parallel_equals_serial(
        self, tiny_game, tiny_scenarios, batch
    ):
        serial_cache = FixedSolveCache(tiny_game, tiny_scenarios)
        serial = serial_cache.price_batch(batch, workers=1)
        with FixedSolveCache(tiny_game, tiny_scenarios) as cache:
            parallel = cache.price_batch(batch, workers=2)
            assert cache.misses == len(
                {tuple(b) for b in batch.tolist()}
            )
        for a, b in zip(serial, parallel, strict=True):
            assert a.objective == b.objective
            assert _policies_equal(a.policy, b.policy)
            assert np.array_equal(
                a.adversary_utilities, b.adversary_utilities
            )

    def test_parallel_results_enter_shared_memo(
        self, tiny_game, tiny_scenarios, batch
    ):
        with FixedSolveCache(tiny_game, tiny_scenarios) as cache:
            priced = cache.price_batch(batch, workers=2)
            # The serial closure must now hit the pool-priced entries.
            hit = cache.solver()(batch[0])
            assert hit is priced[0]


class TestWorkersIdentity:
    """Acceptance: workers>1 == workers=1 (objective, policy, thresholds)."""

    def test_ishm_identical_across_workers(self, tiny_game):
        serial_engine = AuditEngine(tiny_game)
        serial = serial_engine.solve("ishm", step_size=0.4)
        with AuditEngine(tiny_game, workers=2) as engine:
            parallel = engine.solve("ishm", step_size=0.4)
        assert parallel.objective == serial.objective
        assert np.array_equal(parallel.thresholds, serial.thresholds)
        assert _policies_equal(parallel.policy, serial.policy)
        assert (
            parallel.diagnostics["lp_calls"]
            == serial.diagnostics["lp_calls"]
        )

    def test_ishm_max_probes_identical_across_workers(self, tiny_game):
        serial = AuditEngine(tiny_game).solve(
            "ishm", step_size=0.4, max_probes=5
        )
        with AuditEngine(tiny_game, workers=2) as engine:
            parallel = engine.solve("ishm", step_size=0.4, max_probes=5)
        assert parallel.objective == serial.objective
        assert np.array_equal(parallel.thresholds, serial.thresholds)
        assert (
            parallel.diagnostics["lp_calls"]
            == serial.diagnostics["lp_calls"]
        )

    def test_bruteforce_identical_across_workers(self, tiny_game):
        serial = AuditEngine(tiny_game).solve("bruteforce")
        with AuditEngine(tiny_game, workers=2) as engine:
            parallel = engine.solve("bruteforce", chunk_size=3)
        assert parallel.objective == serial.objective
        assert np.array_equal(parallel.thresholds, serial.thresholds)
        assert _policies_equal(parallel.policy, serial.policy)
        assert parallel.diagnostics == serial.diagnostics

    def test_random_threshold_identical_across_workers(self, tiny_game):
        serial = AuditEngine(tiny_game).solve(
            "random-threshold", n_draws=10
        )
        with AuditEngine(tiny_game, workers=2) as engine:
            parallel = engine.solve("random-threshold", n_draws=10)
        assert parallel.objective == serial.objective
        assert parallel.diagnostics == serial.diagnostics
        assert _policies_equal(parallel.policy, serial.policy)

    def test_cggs_inner_ignores_workers(self, tiny_game):
        # CGGS is stateful: workers>1 must transparently price serially
        # and still match the workers=1 run at equal seed.
        serial = AuditEngine(tiny_game).solve(
            "ishm", step_size=0.4, inner="cggs"
        )
        with AuditEngine(tiny_game, workers=2) as engine:
            parallel = engine.solve("ishm", step_size=0.4, inner="cggs")
        assert parallel.objective == serial.objective
        assert np.array_equal(parallel.thresholds, serial.thresholds)


class TestRunnerBatchPaths:
    def test_run_iterative_shrink_batch_equals_solver_path(
        self, tiny_game, tiny_scenarios
    ):
        solver = EnumerationSolver(tiny_game, tiny_scenarios)
        via_solver = run_iterative_shrink(
            tiny_game, tiny_scenarios, 0.4, solver=solver.solve
        )
        via_batch = run_iterative_shrink(
            tiny_game, tiny_scenarios, 0.4, batch_solver=solver.solve_batch
        )
        assert via_batch.objective == via_solver.objective
        assert np.array_equal(via_batch.thresholds, via_solver.thresholds)
        assert via_batch.lp_calls == via_solver.lp_calls

    def test_run_iterative_shrink_rejects_both_solvers(
        self, tiny_game, tiny_scenarios
    ):
        solver = EnumerationSolver(tiny_game, tiny_scenarios)
        with pytest.raises(ValueError, match="not both"):
            run_iterative_shrink(
                tiny_game,
                tiny_scenarios,
                0.4,
                solver=solver.solve,
                batch_solver=solver.solve_batch,
            )


class TestEngineKnobs:
    def test_engine_rejects_bad_workers(self, tiny_game):
        with pytest.raises(ValueError, match="workers"):
            AuditEngine(tiny_game, workers=0)

    def test_engine_price_batch_warms_solver_cache(
        self, tiny_game, batch
    ):
        engine = AuditEngine(tiny_game)
        engine.price_batch(batch)
        info = engine.cache_info()
        assert info.fixed_solutions > 0
        assert info.solution_misses > 0

    def test_close_is_idempotent_and_cache_survives(
        self, tiny_game, batch
    ):
        engine = AuditEngine(tiny_game, workers=2)
        first = engine.price_batch(batch)
        engine.close()
        engine.close()
        # Memo still serves; a new pool spins up transparently if needed.
        again = engine.price_batch(batch)
        assert [s.objective for s in again] == [
            s.objective for s in first
        ]
