"""SolverConfig construction and CLI-style string coercion."""

import pytest

from repro.engine import (
    BruteForceConfig,
    CGGSConfig,
    ISHMConfig,
    RandomOrderConfig,
    SolverConfig,
    get_solver,
)
from repro.engine.registry import make_config


class TestFromDict:
    def test_float_and_int_coercion(self):
        config = ISHMConfig.from_dict(
            {"step_size": "0.25", "max_probes": "50", "seed": "3"}
        )
        assert config.step_size == 0.25
        assert config.max_probes == 50
        assert config.seed == 3

    def test_optional_none_words(self):
        config = ISHMConfig.from_dict({"max_probes": "none"})
        assert config.max_probes is None

    def test_bool_coercion(self):
        for word, expected in (
            ("true", True), ("1", True), ("Yes", True),
            ("false", False), ("0", False), ("off", False),
        ):
            config = BruteForceConfig.from_dict(
                {"enforce_budget_floor": word}
            )
            assert config.enforce_budget_floor is expected

    def test_bad_bool_raises(self):
        with pytest.raises(ValueError, match="boolean"):
            BruteForceConfig.from_dict({"enforce_budget_floor": "maybe"})

    def test_tuple_of_floats(self):
        config = CGGSConfig.from_dict({"thresholds": "1,2.5,3"})
        assert config.thresholds == (1.0, 2.5, 3.0)

    def test_string_passthrough(self):
        config = ISHMConfig.from_dict({"inner": "cggs"})
        assert config.inner == "cggs"

    def test_non_string_values_kept(self):
        config = RandomOrderConfig.from_dict({"n_orderings": 7})
        assert config.n_orderings == 7

    def test_unknown_key_lists_options(self):
        with pytest.raises(ValueError, match="step_size"):
            ISHMConfig.from_dict({"stepsize": "0.1"})


class TestMakeConfig:
    def test_defaults(self):
        spec = get_solver("ishm")
        config = make_config(spec)
        assert isinstance(config, ISHMConfig)
        assert config.step_size == ISHMConfig().step_size

    def test_overrides_on_instance(self):
        spec = get_solver("ishm")
        config = make_config(spec, ISHMConfig(step_size=0.5), seed=9)
        assert config.step_size == 0.5
        assert config.seed == 9

    def test_mapping_is_coerced(self):
        spec = get_solver("ishm")
        config = make_config(spec, {"step_size": "0.4"})
        assert config.step_size == 0.4

    def test_wrong_config_type_raises(self):
        spec = get_solver("ishm")
        with pytest.raises(TypeError, match="ISHMConfig"):
            make_config(spec, BruteForceConfig())

    def test_base_config_rejected_for_specialized_solver(self):
        spec = get_solver("ishm")
        with pytest.raises(TypeError):
            make_config(spec, SolverConfig())

    def test_describe_mentions_fields(self):
        assert "step_size" in ISHMConfig().describe()


class TestLpBackendAlias:
    def test_alias_maps_to_backend(self):
        config = ISHMConfig.from_dict({"lp_backend": "simplex"})
        assert config.backend == "simplex"

    def test_alias_conflicts_with_backend(self):
        with pytest.raises(ValueError, match="lp_backend"):
            CGGSConfig.from_dict(
                {"backend": "scipy", "lp_backend": "simplex"}
            )

    def test_unknown_backend_names_choices(self):
        with pytest.raises(ValueError, match=r"scipy.*simplex"):
            ISHMConfig.from_dict({"lp_backend": "gurobi"})
        with pytest.raises(ValueError, match=r"scipy.*simplex"):
            CGGSConfig.from_dict({"backend": "cplex"})

    def test_alias_on_every_lp_solver_config(self):
        from repro.engine import EnumerationConfig

        for cls in (ISHMConfig, EnumerationConfig, CGGSConfig):
            assert cls.from_dict(
                {"lp_backend": "simplex"}
            ).backend == "simplex"


class TestUnionCoercion:
    def test_cggs_subset_table_words(self):
        assert CGGSConfig.from_dict(
            {"subset_table": "lazy"}
        ).subset_table == "lazy"
        assert CGGSConfig.from_dict(
            {"subset_table": "true"}
        ).subset_table is True
        assert CGGSConfig.from_dict(
            {"subset_table": "false"}
        ).subset_table is False
        assert CGGSConfig.from_dict(
            {"subset_table": "none"}
        ).subset_table is None

    def test_cggs_warm_start_coercion(self):
        assert CGGSConfig.from_dict(
            {"warm_start": "off"}
        ).warm_start is False

    def test_enumeration_prune_coercion(self):
        from repro.engine import EnumerationConfig

        config = EnumerationConfig.from_dict({"prune": "yes"})
        assert config.prune is True
