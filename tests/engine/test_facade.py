"""AuditEngine caching behavior, overrides, and the deprecated shims."""

import numpy as np
import pytest

from repro.engine import AuditEngine, ISHMConfig, register_solver
from repro.engine import registry as registry_module
from repro.engine.cache import FixedSolveCache
from repro.solvers import (
    BruteForceResult,
    ISHMResult,
    iterative_shrink,
    solve_optimal,
)


@pytest.fixture()
def engine(tiny_game):
    return AuditEngine(tiny_game)


class TestScenarioCache:
    def test_same_key_same_object(self, engine):
        first = engine.scenario_set()
        assert engine.scenario_set() is first
        info = engine.cache_info()
        assert info.scenario_sets == 1
        assert info.scenario_hits == 1
        assert info.scenario_misses == 1

    def test_different_key_different_object(self, engine):
        first = engine.scenario_set()
        other = engine.scenario_set(seed=99)
        assert other is not first
        assert engine.cache_info().scenario_sets == 2

    def test_clear_caches(self, engine):
        engine.scenario_set()
        engine.clear_caches()
        info = engine.cache_info()
        assert info.scenario_sets == 0
        assert info.scenario_hits == 0


class TestSolutionCache:
    def test_repeat_solve_hits_cache(self, engine):
        first = engine.solve("ishm", step_size=0.5)
        cold = engine.cache_info()
        second = engine.solve("ishm", step_size=0.5)
        warm = engine.cache_info()
        assert second.objective == first.objective
        assert warm.solution_hits > cold.solution_hits
        assert warm.solution_misses == cold.solution_misses

    def test_cache_shared_across_solvers(self, engine):
        engine.solve("bruteforce")
        cold = engine.cache_info()
        # ISHM starts from full coverage, which brute force has already
        # priced whenever the grid includes it; at minimum the counters
        # keep aggregating in one shared cache.
        engine.solve("ishm", step_size=0.5)
        warm = engine.cache_info()
        assert warm.fixed_solutions >= cold.fixed_solutions
        assert warm.solution_hits >= cold.solution_hits

    def test_identical_results_cold_vs_warm(self, tiny_game):
        warm_engine = AuditEngine(tiny_game)
        warm_engine.solve("bruteforce")  # prime the cache
        warm = warm_engine.solve("ishm", step_size=0.25)
        cold = AuditEngine(tiny_game).solve("ishm", step_size=0.25)
        assert warm.objective == cold.objective
        assert warm.thresholds.tolist() == cold.thresholds.tolist()


class TestSolveArguments:
    def test_override_conflict_raises(self, engine):
        with pytest.raises(TypeError, match="step_size"):
            engine.solve(
                "ishm", {"step_size": "0.5"}, step_size=0.25
            )

    def test_engine_defaults_injected(self, engine):
        result = engine.solve("ishm", step_size=0.5)
        assert result.config.backend == engine.backend
        assert result.config.seed == engine.seed

    def test_explicit_config_object_respected(self, tiny_game):
        engine = AuditEngine(tiny_game, seed=5)
        config = ISHMConfig(step_size=0.5, seed=11)
        result = engine.solve("ishm", config)
        assert result.config.seed == 11

    def test_unknown_method(self, engine):
        with pytest.raises(KeyError):
            engine.solve("gradient-descent")

    def test_evaluate_uses_cached_scenarios(self, engine):
        result = engine.solve("benefit-greedy")
        evaluation = engine.evaluate(result.policy)
        assert evaluation.auditor_loss == pytest.approx(
            result.objective
        )


class TestCustomSolverRegistration:
    def test_registered_solver_reachable_via_engine(
        self, engine, monkeypatch
    ):
        monkeypatch.setattr(
            registry_module, "_REGISTRY", dict(registry_module._REGISTRY)
        )
        monkeypatch.setattr(
            registry_module, "_ALIASES", dict(registry_module._ALIASES)
        )

        @register_solver("constant", summary="test stub")
        def _solve_constant(game, scenarios, config, *, cache=None):
            import time

            from repro.engine import finalize_result
            from repro.core.policy import AuditPolicy, Ordering

            started = time.perf_counter()
            policy = AuditPolicy.pure(
                Ordering(tuple(range(game.n_types))),
                game.threshold_upper_bounds(),
            )
            evaluation = game.evaluate(policy, scenarios)
            return finalize_result(
                game,
                scenarios,
                solver="constant",
                policy=policy,
                objective=evaluation.auditor_loss,
                config=config,
                started=started,
            )

        result = engine.solve("constant")
        assert result.solver == "constant"
        assert np.isfinite(result.objective)


class TestFixedSolveCacheUnit:
    def test_enumeration_solutions_shared_across_seeds(
        self, tiny_game, tiny_scenarios
    ):
        cache = FixedSolveCache(tiny_game, tiny_scenarios)
        b = tiny_game.threshold_upper_bounds().astype(float)
        cache.solver(method="enumeration", seed=0)(b)
        cache.solver(method="enumeration", seed=1)(b)
        info = cache.info()
        assert info.misses == 1
        assert info.hits == 1

    def test_cggs_solutions_not_shared_across_calls(
        self, tiny_game, tiny_scenarios
    ):
        # CGGS is stateful; sharing solutions across solver() calls
        # would make warm engines diverge from cold ones.
        cache = FixedSolveCache(tiny_game, tiny_scenarios)
        b = tiny_game.threshold_upper_bounds().astype(float)
        cache.solver(method="cggs", seed=0)(b)
        cache.solver(method="cggs", seed=0)(b)
        assert cache.info().misses == 2

    def test_cggs_warm_engine_matches_cold(self, tiny_game):
        warm_engine = AuditEngine(tiny_game)
        warm_engine.solve("ishm", step_size=0.5, inner="cggs")
        warm = warm_engine.solve("ishm", step_size=0.25, inner="cggs")
        cold = AuditEngine(tiny_game).solve(
            "ishm", step_size=0.25, inner="cggs"
        )
        assert warm.objective == cold.objective
        assert warm.thresholds.tolist() == cold.thresholds.tolist()
        assert (
            warm.policy.probabilities.tolist()
            == cold.policy.probabilities.tolist()
        )


class TestDeprecatedShims:
    def test_iterative_shrink_warns_and_delegates(
        self, tiny_game, tiny_scenarios
    ):
        with pytest.deprecated_call():
            result = iterative_shrink(
                tiny_game, tiny_scenarios, step_size=0.5
            )
        assert isinstance(result, ISHMResult)

    def test_solve_optimal_warns_and_delegates(
        self, tiny_game, tiny_scenarios
    ):
        with pytest.deprecated_call():
            result = solve_optimal(tiny_game, tiny_scenarios)
        assert isinstance(result, BruteForceResult)

    def test_shim_matches_engine(self, tiny_game, tiny_scenarios):
        with pytest.deprecated_call():
            legacy = iterative_shrink(
                tiny_game, tiny_scenarios, step_size=0.5
            )
        modern = AuditEngine(tiny_game).solve(
            "ishm", step_size=0.5, scenarios=tiny_scenarios
        )
        assert legacy.objective == modern.objective
        assert (
            legacy.thresholds.tolist() == modern.thresholds.tolist()
        )


class TestSolveSeconds:
    def test_engine_stamps_solve_seconds(self, engine):
        result = engine.solve("ishm", ISHMConfig(step_size=0.5))
        assert result.solve_seconds is not None
        assert result.solve_seconds >= result.wall_time - 1e-6

    def test_summary_surfaces_solve_seconds(self, engine):
        result = engine.solve("ishm", ISHMConfig(step_size=0.5))
        assert "solve_seconds=" in result.summary()

    def test_warm_solve_is_observably_faster_path(self, engine):
        cold = engine.solve("ishm", ISHMConfig(step_size=0.5))
        warm = engine.solve("ishm", ISHMConfig(step_size=0.5))
        # Same answer; the repeat is served from the solution cache and
        # its engine wall clock is recorded independently.
        assert warm.objective == cold.objective
        assert warm.solve_seconds is not None
        assert warm.solve_seconds != cold.solve_seconds

    def test_direct_dispatch_leaves_solve_seconds_unset(
        self, tiny_game, tiny_scenarios
    ):
        from repro.engine import solve as engine_solve

        result = engine_solve(
            tiny_game,
            tiny_scenarios,
            "ishm",
            ISHMConfig(step_size=0.5),
        )
        assert result.solve_seconds is None
