"""Concurrent access to one AuditEngine / FixedSolveCache.

The serve layer shares a single engine between request-handler threads
and the background re-solve worker, so cache mutation must be safe under
races.  These tests hammer one engine from many threads and require the
results to equal a serial reference bit for bit and the cache counters
to stay consistent — a lost update, torn memo insert, or double solver
construction would break one of the assertions (under free-threaded
builds; with the GIL they still catch coarse-grained races).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.engine import AuditEngine

N_THREADS = 8


def _grid(game, n: int) -> np.ndarray:
    rng = np.random.default_rng(7)
    return np.round(
        rng.uniform(0, game.budget, size=(n, game.n_types)), 1
    )


def test_concurrent_price_batch_matches_serial(tiny_game):
    vectors = _grid(tiny_game, 12)
    with AuditEngine(tiny_game) as reference:
        serial = reference.price_batch(vectors)
    expected = [s.objective for s in serial]

    with AuditEngine(tiny_game) as engine:
        rng = np.random.default_rng(3)
        orders = [rng.permutation(len(vectors)) for _ in range(N_THREADS)]

        def worker(order):
            solutions = engine.price_batch(vectors[order])
            return order, [s.objective for s in solutions]

        with ThreadPoolExecutor(N_THREADS) as pool:
            outcomes = list(pool.map(worker, orders))

        for order, losses in outcomes:
            for row, loss in zip(order, losses, strict=True):
                assert loss == expected[row]

        info = engine.cache_info()
        # Every vector solved at most once, every request accounted for.
        assert info.fixed_solutions == len(vectors)
        assert info.solution_misses == len(vectors)
        assert (
            info.solution_hits + info.solution_misses
            == N_THREADS * len(vectors)
        )


def test_concurrent_single_vector_solver(tiny_game):
    vectors = _grid(tiny_game, 6)
    with AuditEngine(tiny_game) as engine:
        scenarios = engine.scenario_set()
        cache = engine.solution_cache(scenarios)
        solver = cache.solver(backend="scipy")
        serial = {i: solver(b).objective for i, b in enumerate(vectors)}
        before = cache.info()

        results: dict[int, list[float]] = {}
        lock = threading.Lock()

        def worker(tid: int) -> None:
            mine = [solver(b).objective for b in vectors]
            with lock:
                results[tid] = mine

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for mine in results.values():
            assert mine == [serial[i] for i in range(len(vectors))]
        after = cache.info()
        # All concurrent calls were hits on the serially-primed memo.
        assert after.solutions == before.solutions
        assert after.misses == before.misses
        assert (
            after.hits - before.hits == N_THREADS * len(vectors)
        )


def test_concurrent_solves_share_one_scenario_set(tiny_game):
    with AuditEngine(tiny_game) as engine:
        reference = engine.solve("ishm", step_size=0.5)

        def worker(_: int) -> float:
            return engine.solve("ishm", step_size=0.5).objective

        with ThreadPoolExecutor(4) as pool:
            objectives = list(pool.map(worker, range(4)))

        assert objectives == [reference.objective] * 4
        info = engine.cache_info()
        assert info.scenario_sets == 1
        # One scenario-set creation; all later lookups were hits.
        assert info.scenario_misses == 1
        assert info.scenario_hits == 4


def test_concurrent_cache_creation_is_single(tiny_game, tiny_scenarios):
    engine = AuditEngine(tiny_game)
    caches = []
    barrier = threading.Barrier(N_THREADS)
    lock = threading.Lock()

    def worker() -> None:
        barrier.wait()
        cache = engine.solution_cache(tiny_scenarios)
        with lock:
            caches.append(cache)

    threads = [
        threading.Thread(target=worker) for _ in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(cache is caches[0] for cache in caches)
