"""The solver registry: coverage, the SolveResult contract, determinism.

The contract test is the ISSUE's acceptance gate: every registered
solver must solve the small Syn A instance and return a well-formed
:class:`~repro.engine.SolveResult`.
"""

import numpy as np
import pytest

from repro.datasets import syn_a
from repro.engine import (
    AuditEngine,
    SolveResult,
    SolverConfig,
    available,
    get_solver,
    register_solver,
    solve,
    solver_table,
)

#: Small configs so the all-solver sweep stays fast.
SMALL_CONFIGS: dict[str, dict] = {
    "ishm": {"step_size": 0.5},
    "bruteforce": {},
    "enumeration": {},
    "cggs": {},
    "random-order": {"n_orderings": 8},
    "random-threshold": {"n_draws": 4},
    "benefit-greedy": {},
}


@pytest.fixture(scope="module")
def small_engine():
    """One shared engine for the whole module (warm caches are part of
    the point: every solver must behave with a shared cache)."""
    return AuditEngine(syn_a(budget=2))


class TestRegistryCoverage:
    def test_every_builtin_is_registered(self):
        assert set(available()) == set(SMALL_CONFIGS)

    def test_aliases_resolve(self):
        assert get_solver("optimal").name == "bruteforce"
        assert get_solver("iterative-shrink").name == "ishm"

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="ishm"):
            get_solver("no-such-solver")

    def test_table_mentions_every_solver(self):
        table = solver_table()
        for name in available():
            assert name in table

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_solver("ishm")(lambda *a, **k: None)


@pytest.mark.parametrize("name", sorted(SMALL_CONFIGS))
class TestSolveResultContract:
    def test_contract(self, small_engine, name):
        game = small_engine.game
        result = small_engine.solve(name, SMALL_CONFIGS[name])

        assert isinstance(result, SolveResult)
        assert result.solver == name
        # Objective is a finite auditor loss.
        assert np.isfinite(result.objective)
        # Policy is feasible: complete orderings over the game's types,
        # a proper distribution, non-negative thresholds within the
        # brute-force grid ceiling.
        policy = result.policy
        assert policy.n_types == game.n_types
        assert np.isclose(policy.probabilities.sum(), 1.0)
        assert policy.probabilities.min() >= 0.0
        assert policy.thresholds.min() >= 0.0
        upper = np.ceil(game.threshold_upper_bounds())
        assert (policy.thresholds <= upper + 1e-9).all()
        for ordering in policy.orderings:
            assert ordering.is_complete(game.n_types)
        # Best responses cover every adversary.
        assert len(result.best_responses) == game.n_adversaries
        # Timing and diagnostics are populated.
        assert result.wall_time > 0.0
        assert result.diagnostics["n_scenarios"] > 0
        # The config echo is the solver's own typed config.
        assert isinstance(
            result.config, get_solver(name).config_cls
        )
        assert isinstance(result.config, SolverConfig)
        # summary() renders without error and names the solver.
        assert name in result.summary()


@pytest.mark.parametrize(
    "name", ["ishm", "cggs", "random-order", "random-threshold"]
)
class TestSeedDeterminism:
    def test_same_seed_same_result(self, tiny_game, tiny_scenarios, name):
        config = dict(SMALL_CONFIGS[name], seed=7)
        first = solve(tiny_game, tiny_scenarios, name, config)
        second = solve(tiny_game, tiny_scenarios, name, config)
        assert first.objective == second.objective
        assert first.thresholds.tolist() == second.thresholds.tolist()
        assert (
            first.policy.probabilities.tolist()
            == second.policy.probabilities.tolist()
        )
        assert [tuple(o) for o in first.policy.orderings] == [
            tuple(o) for o in second.policy.orderings
        ]
        assert first.best_responses == second.best_responses


class TestModuleLevelSolve:
    def test_one_shot_dispatch(self, tiny_game, tiny_scenarios):
        result = solve(
            tiny_game, tiny_scenarios, "ishm", {"step_size": "0.5"}
        )
        assert isinstance(result, SolveResult)
        assert result.diagnostics["lp_calls"] > 0

    def test_aggregate_baseline_reports_mean(
        self, tiny_game, tiny_scenarios
    ):
        result = solve(
            tiny_game, tiny_scenarios, "random-threshold", {"n_draws": 5}
        )
        # The headline is the mean over draws; the policy is the best
        # draw, so its own loss can only be at least as good.
        assert result.diagnostics["min_loss"] <= result.objective
        assert result.diagnostics["n_draws"] == 5
