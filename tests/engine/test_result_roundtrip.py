"""SolveResult JSON round-trip: to_dict/from_dict must be lossless."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import AuditEngine
from repro.engine.result import SolveResult


@pytest.fixture(scope="module")
def results(tiny_game_module):
    engine = AuditEngine(tiny_game_module)
    return {
        "ishm": engine.solve("ishm", step_size=0.5),
        "random": engine.solve("random-threshold", n_draws=3),
    }


@pytest.fixture(scope="module")
def tiny_game_module():
    from repro.core import (
        AlertType,
        AlertTypeSet,
        AttackTypeMap,
        AuditGame,
        PayoffModel,
    )
    from repro.distributions import DiscretizedGaussian, JointCountModel

    alert_types = AlertTypeSet(
        (
            AlertType("fast", audit_cost=1.0),
            AlertType("slow", audit_cost=2.0),
        )
    )
    type_matrix = np.array([[0, 1, -1], [1, 0, 0]])
    payoffs = PayoffModel.create(
        n_adversaries=2,
        n_victims=3,
        benefit=np.where(
            type_matrix == 0, 4.0, np.where(type_matrix == 1, 6.0, 0.0)
        ),
        penalty=5.0,
        attack_cost=0.5,
        attack_prior=1.0,
    )
    return AuditGame(
        alert_types=alert_types,
        counts=JointCountModel(
            [
                DiscretizedGaussian(mean=3.0, std=1.0),
                DiscretizedGaussian(mean=2.0, std=1.0),
            ]
        ),
        attack_map=AttackTypeMap.from_type_matrix(type_matrix, n_types=2),
        payoffs=payoffs,
        budget=3.0,
    )


@pytest.mark.parametrize("name", ["ishm", "random"])
class TestRoundTrip:
    def test_bitwise_through_json(self, results, name):
        """dict -> json -> dict -> SolveResult preserves every number.

        Python's ``json`` writes floats with ``repr``, which round-trips
        any finite float64 bit for bit — so equality here is exact, not
        approximate.
        """
        result = results[name]
        wire = json.loads(json.dumps(result.to_dict()))
        restored = SolveResult.from_dict(wire)

        assert restored.solver == result.solver
        assert restored.objective == result.objective  # bitwise
        assert restored.wall_time == result.wall_time
        assert restored.solve_seconds == result.solve_seconds

        # Policy: orderings, mixed weights and thresholds, exactly.
        assert tuple(
            tuple(o) for o in restored.policy.orderings
        ) == tuple(tuple(o) for o in result.policy.orderings)
        np.testing.assert_array_equal(
            restored.policy.probabilities, result.policy.probabilities
        )
        np.testing.assert_array_equal(
            restored.policy.thresholds, result.policy.thresholds
        )
        assert restored.policy.probabilities.dtype == np.float64

        # Best responses, exactly.
        assert len(restored.best_responses) == len(result.best_responses)
        for ours, theirs in zip(
            restored.best_responses, result.best_responses, strict=True
        ):
            assert ours.adversary == theirs.adversary
            assert ours.victim == theirs.victim
            assert ours.utility == theirs.utility

        # The config echo restores to an equal typed config.
        assert type(restored.config) is type(result.config)
        assert restored.config == result.config

    def test_second_round_trip_is_identity(self, results, name):
        once = SolveResult.from_dict(
            json.loads(json.dumps(results[name].to_dict()))
        )
        twice = SolveResult.from_dict(
            json.loads(json.dumps(once.to_dict()))
        )
        assert once.to_dict() == twice.to_dict()

    def test_raw_is_dropped_by_contract(self, results, name):
        restored = SolveResult.from_dict(results[name].to_dict())
        assert restored.raw is None
        assert "raw" not in results[name].to_dict()

    def test_diagnostics_survive(self, results, name):
        result = results[name]
        wire = json.loads(json.dumps(result.to_dict()))
        restored = SolveResult.from_dict(wire)
        assert set(restored.diagnostics) == set(result.diagnostics)
        assert (
            restored.diagnostics["n_scenarios"]
            == result.diagnostics["n_scenarios"]
        )
        with pytest.raises(TypeError):
            restored.diagnostics["n_scenarios"] = 0  # read-only


def test_unknown_config_class_is_rejected(results):
    wire = results["ishm"].to_dict()
    wire["config"] = {"class": "NoSuchConfig", "values": {}}
    with pytest.raises(ValueError, match="NoSuchConfig"):
        SolveResult.from_dict(wire)
