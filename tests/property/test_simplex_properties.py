"""Property-based cross-validation of the simplex against HiGHS."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.lp import (
    LinearProgram,
    solve_with_scipy,
    solve_with_simplex,
)


@st.composite
def feasible_lp(draw):
    """Random LPs guaranteed feasible by construction.

    ``A_ub x0 <= b_ub`` holds for a sampled interior point ``x0 >= 0``,
    so phase 1 always succeeds; objectives stay bounded because all
    variables get finite upper bounds.
    """
    n = draw(st.integers(1, 4))
    m = draw(st.integers(1, 4))
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    a_ub = rng.uniform(-2.0, 2.0, size=(m, n)).round(2)
    x0 = rng.uniform(0.0, 2.0, size=n).round(2)
    slack = rng.uniform(0.1, 1.5, size=m).round(2)
    b_ub = a_ub @ x0 + slack
    c = rng.uniform(-3.0, 3.0, size=n).round(2)
    bounds = tuple((0.0, 5.0) for _ in range(n))
    return LinearProgram(
        objective=c, a_ub=a_ub, b_ub=b_ub, bounds=bounds
    )


@given(feasible_lp())
@settings(max_examples=60, deadline=None)
def test_simplex_matches_scipy_objective(lp):
    ours = solve_with_simplex(lp)
    reference = solve_with_scipy(lp)
    assert ours.is_optimal == reference.is_optimal
    if ours.is_optimal:
        assert np.isclose(
            ours.objective_value,
            reference.objective_value,
            atol=1e-6,
            rtol=1e-6,
        )


@given(feasible_lp())
@settings(max_examples=60, deadline=None)
def test_simplex_solution_is_feasible(lp):
    sol = solve_with_simplex(lp)
    if not sol.is_optimal:
        return
    assert np.all(lp.a_ub @ sol.x <= lp.b_ub + 1e-7)
    for value, (lo, hi) in zip(sol.x, lp.bounds, strict=True):
        assert value >= lo - 1e-7
        assert value <= hi + 1e-7


@given(feasible_lp())
@settings(max_examples=40, deadline=None)
def test_weak_duality_bound(lp):
    """Dual value y'b (y <= 0 on <= rows) lower-bounds the optimum.

    With finite variable bounds the full dual also involves bound
    multipliers, so we check the inequality rather than equality.
    """
    sol = solve_with_simplex(lp)
    if not sol.is_optimal:
        return
    assert np.all(sol.dual_ub <= 1e-9)
