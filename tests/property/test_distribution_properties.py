"""Property-based tests for alert-count distributions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    DiscretizedGaussian,
    EmpiricalCounts,
    JointCountModel,
    TruncatedPoisson,
)

gaussian_params = st.tuples(
    st.floats(0.5, 60.0), st.floats(0.3, 15.0)
)


@given(gaussian_params)
@settings(max_examples=50, deadline=None)
def test_gaussian_pmf_normalized(params):
    mean, std = params
    model = DiscretizedGaussian(mean, std)
    assert np.isclose(model.support_pmf().sum(), 1.0, atol=1e-9)


@given(gaussian_params)
@settings(max_examples=50, deadline=None)
def test_gaussian_support_contains_rounded_mean(params):
    mean, std = params
    model = DiscretizedGaussian(mean, std)
    center = int(round(mean))
    assert model.min_count <= max(center, 0)
    assert model.max_count >= center


@given(gaussian_params, st.floats(0.01, 0.99))
@settings(max_examples=50, deadline=None)
def test_quantile_inverts_cdf(params, q):
    mean, std = params
    model = DiscretizedGaussian(mean, std)
    n = model.quantile(q)
    assert model.cdf(n) >= q - 1e-9
    if n > model.min_count:
        assert model.cdf(n - 1) < q + 1e-9


@given(st.floats(0.5, 40.0))
@settings(max_examples=40, deadline=None)
def test_poisson_mean_below_rate(rate):
    # Upper truncation can only pull the mean down.
    model = TruncatedPoisson(rate)
    assert model.mean() <= rate + 1e-9


@given(
    st.lists(st.integers(0, 30), min_size=1, max_size=40)
)
@settings(max_examples=50, deadline=None)
def test_empirical_mean_matches_samples(samples):
    model = EmpiricalCounts.from_samples(samples)
    assert np.isclose(model.mean(), np.mean(samples), atol=1e-9)


@given(
    st.lists(gaussian_params, min_size=1, max_size=3),
    st.integers(1, 200),
)
@settings(max_examples=30, deadline=None)
def test_joint_sampling_within_marginal_supports(params, n):
    joint = JointCountModel(
        [DiscretizedGaussian(m, s) for m, s in params]
    )
    sc = joint.sample_scenarios(n, np.random.default_rng(0))
    for t, marginal in enumerate(joint.marginals):
        assert sc.counts[:, t].min() >= marginal.min_count
        assert sc.counts[:, t].max() <= marginal.max_count


@given(st.lists(gaussian_params, min_size=1, max_size=2))
@settings(max_examples=20, deadline=None)
def test_exact_scenarios_weights_match_product(params):
    joint = JointCountModel(
        [DiscretizedGaussian(m, s) for m, s in params]
    )
    if joint.n_exact_scenarios() > 5000:
        return
    sc = joint.exact_scenarios()
    assert np.isclose(sc.weights.sum(), 1.0, atol=1e-9)
    # Expected counts equal the product of marginal means.
    expected = np.array([m.mean() for m in joint.marginals])
    assert np.allclose(sc.expected_counts(), expected, atol=1e-6)
