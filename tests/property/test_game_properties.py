"""Property-based tests on game-level invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AuditPolicy,
    PayoffModel,
    all_orderings,
)
from repro.distributions import ConstantCount, JointCountModel
from tests.conftest import make_tiny_game


@st.composite
def random_policy_and_game(draw):
    budget = draw(st.floats(0.0, 8.0))
    game = make_tiny_game(budget=budget)
    orderings = all_orderings(2)
    weights = np.array(
        [draw(st.floats(0.05, 1.0)) for _ in orderings]
    )
    thresholds = np.array(
        [draw(st.floats(0.0, 6.0)) for _ in range(2)]
    )
    policy = AuditPolicy(
        orderings=tuple(orderings),
        probabilities=weights / weights.sum(),
        thresholds=thresholds,
    )
    return game, policy


@given(random_policy_and_game())
@settings(max_examples=40, deadline=None)
def test_auditor_loss_bounded_by_extremes(pair):
    """Loss lies between total deterrence and undetected free-for-all."""
    game, policy = pair
    scenarios = game.scenario_set()
    ev = game.evaluate(policy, scenarios)
    worst = float(
        (game.payoffs.benefit.max(axis=1)
         - game.payoffs.attack_cost.min()).sum()
    )
    best = float(
        -(game.payoffs.penalty.max() + game.payoffs.attack_cost.max())
        * game.n_adversaries
    )
    assert best - 1e-9 <= ev.auditor_loss <= worst + 1e-9


@given(random_policy_and_game())
@settings(max_examples=40, deadline=None)
def test_mixed_pal_is_convex_combination(pair):
    game, policy = pair
    scenarios = game.scenario_set()
    ev = game.evaluate(policy, scenarios)
    lower = ev.pal_rows.min(axis=0) - 1e-12
    upper = ev.pal_rows.max(axis=0) + 1e-12
    assert np.all(ev.mixed_pal >= lower)
    assert np.all(ev.mixed_pal <= upper)


@given(
    st.integers(1, 4),
    st.integers(1, 4),
    st.integers(1, 3),
    st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_utility_matrix_affine_in_detection(n_e, n_v, n_t, seed):
    """Eq. 3 is affine in Pat: mixing detections mixes utilities."""
    rng = np.random.default_rng(seed)
    payoffs = PayoffModel.create(
        n_adversaries=n_e,
        n_victims=n_v,
        benefit=rng.uniform(0, 5, size=(n_e, n_v)),
        penalty=rng.uniform(0, 5),
        attack_cost=rng.uniform(0, 1),
    )
    pat_a = rng.uniform(0, 1, size=(n_e, n_v))
    pat_b = rng.uniform(0, 1, size=(n_e, n_v))
    lam = rng.uniform(0, 1)
    mixed = payoffs.utility_matrix(lam * pat_a + (1 - lam) * pat_b)
    direct = lam * payoffs.utility_matrix(pat_a) + (
        1 - lam
    ) * payoffs.utility_matrix(pat_b)
    assert np.allclose(mixed, direct)


@given(st.integers(0, 3), st.integers(0, 3), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_deterministic_counts_make_pal_deterministic(z0, z1, seed):
    """With constant counts the scenario expectation is a single term."""
    rng = np.random.default_rng(seed)
    counts = JointCountModel([ConstantCount(z0), ConstantCount(z1)])
    game = make_tiny_game(budget=float(rng.integers(0, 6)),
                          counts=counts)
    scenarios = game.scenario_set()
    assert scenarios.n_scenarios == 1
    policy = AuditPolicy.pure(
        all_orderings(2)[0],
        rng.uniform(0, 5, size=2),
    )
    ev = game.evaluate(policy, scenarios)
    assert np.all((ev.mixed_pal == 0) | (ev.mixed_pal > 0))
