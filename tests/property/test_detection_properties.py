"""Property-based tests for the detection kernel (eq. 1 invariants)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Ordering, audited_counts, pal_for_ordering
from repro.distributions import ScenarioSet

N_TYPES = 3


@st.composite
def kernel_inputs(draw):
    """Random (ordering, thresholds, scenarios, costs, budget)."""
    n_scenarios = draw(st.integers(1, 6))
    counts = draw(
        st.lists(
            st.lists(st.integers(0, 12), min_size=N_TYPES,
                     max_size=N_TYPES),
            min_size=n_scenarios,
            max_size=n_scenarios,
        )
    )
    weights = draw(
        st.lists(
            st.floats(0.05, 1.0, allow_nan=False),
            min_size=n_scenarios,
            max_size=n_scenarios,
        )
    )
    weights = np.asarray(weights)
    scenarios = ScenarioSet(
        counts=np.asarray(counts, dtype=np.int64),
        weights=weights / weights.sum(),
    )
    perm = draw(st.permutations(range(N_TYPES)))
    thresholds = np.asarray(
        draw(
            st.lists(st.floats(0.0, 15.0), min_size=N_TYPES,
                     max_size=N_TYPES)
        )
    )
    costs = np.asarray(
        draw(
            st.lists(st.floats(0.5, 3.0), min_size=N_TYPES,
                     max_size=N_TYPES)
        )
    )
    budget = draw(st.floats(0.0, 30.0))
    return Ordering(tuple(perm)), thresholds, scenarios, costs, budget


@given(kernel_inputs())
@settings(max_examples=60, deadline=None)
def test_pal_is_probability(inputs):
    ordering, thresholds, scenarios, costs, budget = inputs
    pal = pal_for_ordering(ordering, thresholds, scenarios, costs,
                           budget)
    assert np.all(pal >= -1e-12)
    assert np.all(pal <= 1.0 + 1e-12)


@given(kernel_inputs())
@settings(max_examples=60, deadline=None)
def test_audited_counts_bounded_by_realizations(inputs):
    ordering, thresholds, scenarios, costs, budget = inputs
    audited = audited_counts(
        ordering, thresholds, scenarios.counts, costs, budget
    )
    assert np.all(audited >= 0)
    assert np.all(audited <= scenarios.counts + 1e-12)


@given(kernel_inputs(), st.floats(0.5, 10.0))
@settings(max_examples=60, deadline=None)
def test_pal_monotone_in_budget(inputs, extra):
    ordering, thresholds, scenarios, costs, budget = inputs
    low = pal_for_ordering(ordering, thresholds, scenarios, costs,
                           budget)
    high = pal_for_ordering(
        ordering, thresholds, scenarios, costs, budget + extra
    )
    assert np.all(high >= low - 1e-12)


@given(kernel_inputs(), st.integers(0, N_TYPES - 1),
       st.floats(0.5, 5.0))
@settings(max_examples=60, deadline=None)
def test_pal_monotone_in_own_threshold(inputs, type_index, bump):
    """Raising b_t never reduces type t's own detection probability."""
    ordering, thresholds, scenarios, costs, budget = inputs
    base = pal_for_ordering(ordering, thresholds, scenarios, costs,
                            budget)
    bumped = thresholds.copy()
    bumped[type_index] += bump
    after = pal_for_ordering(ordering, bumped, scenarios, costs,
                             budget)
    assert after[type_index] >= base[type_index] - 1e-12


@given(kernel_inputs())
@settings(max_examples=40, deadline=None)
def test_leading_type_capacity_only_budget_limited(inputs):
    """The first type in the order sees the full budget."""
    ordering, thresholds, scenarios, costs, budget = inputs
    lead = ordering.positions[0]
    audited = audited_counts(
        ordering, thresholds, scenarios.counts, costs, budget
    )
    quota = np.floor(thresholds[lead] / costs[lead])
    capacity = np.floor(budget / costs[lead])
    expected = np.minimum(
        np.minimum(capacity, quota), scenarios.counts[:, lead]
    )
    assert np.allclose(audited[:, lead], expected)


@given(kernel_inputs())
@settings(max_examples=40, deadline=None)
def test_zero_rules_agree_on_positive_counts(inputs):
    """'unit' and 'strict' differ only at Z_t = 0."""
    ordering, thresholds, scenarios, costs, budget = inputs
    unit = pal_for_ordering(
        ordering, thresholds, scenarios, costs, budget,
        zero_count_rule="unit",
    )
    strict = pal_for_ordering(
        ordering, thresholds, scenarios, costs, budget,
        zero_count_rule="strict",
    )
    never_empty = np.all(scenarios.counts > 0, axis=0)
    assert np.allclose(unit[never_empty], strict[never_empty])
    assert np.all(unit >= strict - 1e-12)
