"""Plugin registries: registration, lookup, aliases, tables."""

import pytest

from repro.sim import ADVERSARIES, ESTIMATORS, EVENT_SOURCES
from repro.sim.registry import PluginRegistry


class TestBuiltinPlugins:
    def test_event_sources_registered(self):
        assert set(EVENT_SOURCES.available()) == {
            "model", "drift", "tdmt-emr",
        }

    def test_estimators_registered(self):
        assert set(ESTIMATORS.available()) == {
            "fixed", "rolling-empirical", "rolling-gaussian",
        }

    def test_adversaries_registered(self):
        assert set(ADVERSARIES.available()) == {
            "best-response", "static", "quantal",
        }

    def test_aliases_resolve(self):
        assert EVENT_SOURCES.get("dataset").name == "model"
        assert ESTIMATORS.get("paper").name == "fixed"
        assert ADVERSARIES.get("rational").name == "best-response"

    def test_tables_mention_every_plugin(self):
        for registry in (EVENT_SOURCES, ESTIMATORS, ADVERSARIES):
            table = registry.table()
            for name in registry.available():
                assert name in table


class TestPluginRegistry:
    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="model"):
            EVENT_SOURCES.get("replay-from-mars")

    def test_duplicate_registration_rejected(self):
        registry = PluginRegistry("widget")
        registry.register("a")(lambda game: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a")(lambda game: None)

    def test_alias_collision_rejected(self):
        registry = PluginRegistry("widget")
        registry.register("a", aliases=("b",))(lambda game: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("b")(lambda game: None)

    def test_create_passes_game_and_options(self):
        registry = PluginRegistry("widget")

        @registry.register("probe")
        class Probe:
            def __init__(self, game, *, knob=1):
                self.game = game
                self.knob = knob

        made = registry.create("probe", "THE-GAME", {"knob": 7})
        assert made.game == "THE-GAME"
        assert made.knob == 7

    def test_function_factory_options_are_coerced(self):
        # Coercion inspects function factories directly, not through
        # object.__init__.
        from repro.sim.simulator import _coerced_options

        registry = PluginRegistry("widget")

        @registry.register("fn")
        def make_widget(game, *, window: int = 5):
            return ("widget", window)

        options = _coerced_options(make_widget, {"window": "14"})
        assert options == {"window": 14}
        assert registry.create("fn", None, options) == ("widget", 14)

    def test_create_bad_option_names_plugin(self):
        registry = PluginRegistry("widget")
        registry.register("probe")(lambda game: None)
        with pytest.raises(TypeError, match="probe"):
            registry.create("probe", None, {"bogus": 1})
