"""Event sources: determinism, drift, and the TDMT replay."""

import numpy as np
import pytest

from repro.datasets import rea_a
from repro.sim import DriftingSource, ModelSource, TDMTEMRSource


class TestModelSource:
    def test_shape_and_support(self, tiny_game):
        source = ModelSource(tiny_game)
        rng = np.random.default_rng(0)
        for period in range(5):
            z = source.counts(period, rng)
            assert z.shape == (tiny_game.n_types,)
            assert z.dtype == np.int64
            for t, model in enumerate(tiny_game.counts.marginals):
                assert model.min_count <= z[t] <= model.max_count

    def test_same_rng_seed_reproduces(self, tiny_game):
        source = ModelSource(tiny_game)
        a = [
            source.counts(p, np.random.default_rng(3)).tolist()
            for p in range(3)
        ]
        b = [
            source.counts(p, np.random.default_rng(3)).tolist()
            for p in range(3)
        ]
        assert a == b


class TestDriftingSource:
    def test_zero_drift_matches_initial_means(self, tiny_game):
        source = DriftingSource(tiny_game, drift=0.0)
        expected = [m.mean() for m in tiny_game.counts.marginals]
        assert np.allclose(source.means_at(0), expected)
        assert np.allclose(source.means_at(9), expected)

    def test_positive_drift_inflates_means(self, tiny_game):
        source = DriftingSource(tiny_game, drift=0.5)
        assert (source.means_at(4) > source.means_at(0)).all()
        # +50% per period compounds linearly on the initial mean.
        assert np.allclose(
            source.means_at(2), source.means_at(0) * 2.0
        )

    def test_negative_drift_floors_at_zero(self, tiny_game):
        source = DriftingSource(tiny_game, drift=-1.0)
        assert (source.means_at(5) == 0.0).all()
        rng = np.random.default_rng(0)
        z = source.counts(5, rng)
        assert (z >= 0).all()

    def test_realized_counts_track_the_drift(self, tiny_game):
        source = DriftingSource(tiny_game, drift=1.0)
        rng = np.random.default_rng(1)
        early = source.counts(0, rng).sum()
        late = source.counts(8, rng).sum()
        assert late > early

    def test_rejects_bad_parameters(self, tiny_game):
        with pytest.raises(ValueError, match="std_scale"):
            DriftingSource(tiny_game, std_scale=0.0)
        with pytest.raises(ValueError, match="coverage"):
            DriftingSource(tiny_game, coverage=1.5)


class TestTDMTEMRSource:
    @pytest.fixture(scope="class")
    def emr_game(self):
        return rea_a(budget=50)

    def test_replays_labeled_daily_counts(self, emr_game):
        source = TDMTEMRSource(emr_game, n_periods=3, seed=11)
        rng = np.random.default_rng(0)
        days = [source.counts(p, rng) for p in range(3)]
        for z in days:
            assert z.shape == (emr_game.n_types,)
            assert (z >= 0).all()
        # The composite types actually fire in the simulated log.
        assert sum(int(z.sum()) for z in days) > 0
        # Replay wraps past the simulated horizon.
        assert (source.counts(3, rng) == days[0]).all()

    def test_log_fixed_at_construction(self, emr_game):
        a = TDMTEMRSource(emr_game, n_periods=2, seed=5)
        b = TDMTEMRSource(emr_game, n_periods=2, seed=5)
        rng = np.random.default_rng(0)
        assert (a.counts(0, rng) == b.counts(0, rng)).all()
        assert (a.counts(1, rng) == b.counts(1, rng)).all()

    def test_rejects_wrong_game_shape(self, tiny_game):
        with pytest.raises(ValueError, match="7-type"):
            TDMTEMRSource(tiny_game, n_periods=2)

    def test_rejects_bad_horizon(self, emr_game):
        with pytest.raises(ValueError, match="n_periods"):
            TDMTEMRSource(emr_game, n_periods=0)
