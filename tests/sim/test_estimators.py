"""Distribution estimators: refit cadence, identity contract, windows."""

import numpy as np
import pytest

from repro.sim import (
    FixedEstimator,
    RollingEmpiricalEstimator,
    RollingGaussianEstimator,
)


def _feed(estimator, rows):
    for period, row in enumerate(rows):
        estimator.observe(period, np.asarray(row, dtype=np.int64))


class TestFixedEstimator:
    def test_always_serves_the_prior_object(self, tiny_game):
        estimator = FixedEstimator(tiny_game)
        assert estimator.model() is tiny_game.counts
        _feed(estimator, [[100, 100]] * 5)
        assert estimator.model() is tiny_game.counts


class TestRollingEmpirical:
    def test_serves_prior_until_min_periods(self, tiny_game):
        estimator = RollingEmpiricalEstimator(
            tiny_game, min_periods=3
        )
        _feed(estimator, [[4, 2], [5, 3]])
        assert estimator.model() is tiny_game.counts
        estimator.observe(2, np.array([6, 1]))
        assert estimator.model() is not tiny_game.counts
        assert estimator.n_refits == 1

    def test_refit_matches_window_empirics(self, tiny_game):
        estimator = RollingEmpiricalEstimator(
            tiny_game, min_periods=3
        )
        _feed(estimator, [[4, 2], [5, 3], [6, 1]])
        model = estimator.model()
        assert np.isclose(model.marginals[0].mean(), 5.0)
        assert np.isclose(model.marginals[1].mean(), 2.0)
        assert model.marginals[0].min_count == 4
        assert model.marginals[0].max_count == 6

    def test_window_ages_out_old_periods(self, tiny_game):
        estimator = RollingEmpiricalEstimator(
            tiny_game, window=2, min_periods=2
        )
        _feed(estimator, [[100, 100], [4, 2], [6, 4]])
        model = estimator.model()
        # The spike at period 0 left the window.
        assert model.marginals[0].max_count == 6
        assert np.isclose(model.marginals[0].mean(), 5.0)

    def test_identity_stable_between_refits(self, tiny_game):
        estimator = RollingEmpiricalEstimator(
            tiny_game, min_periods=2, refit_every=3
        )
        _feed(estimator, [[4, 2], [5, 3], [6, 1]])
        first = estimator.model()
        assert estimator.n_refits == 1
        estimator.observe(3, np.array([7, 2]))
        assert estimator.model() is first  # no refit yet
        estimator.observe(4, np.array([8, 3]))
        estimator.observe(5, np.array([9, 4]))
        assert estimator.model() is not first
        assert estimator.n_refits == 2

    def test_coverage_truncates_outliers(self, tiny_game):
        estimator = RollingEmpiricalEstimator(
            tiny_game, window=50, min_periods=10, coverage=0.9
        )
        rows = [[1, 1]] * 19 + [[500, 1]]
        _feed(estimator, rows)
        assert estimator.model().marginals[0].max_count == 1

    def test_rejects_bad_parameters(self, tiny_game):
        with pytest.raises(ValueError, match="window"):
            RollingEmpiricalEstimator(tiny_game, window=0)
        with pytest.raises(ValueError, match="min_periods"):
            RollingEmpiricalEstimator(tiny_game, min_periods=0)
        with pytest.raises(ValueError, match="refit_every"):
            RollingEmpiricalEstimator(tiny_game, refit_every=0)
        with pytest.raises(ValueError, match="coverage"):
            RollingEmpiricalEstimator(tiny_game, coverage=0.0)
        # window < min_periods could never refit; reject up front.
        with pytest.raises(ValueError, match="never refit"):
            RollingEmpiricalEstimator(
                tiny_game, window=2, min_periods=5
            )


class TestRollingGaussian:
    def test_tracks_window_mean(self, tiny_game):
        estimator = RollingGaussianEstimator(
            tiny_game, window=4, min_periods=4
        )
        _feed(estimator, [[10, 2], [12, 3], [14, 2], [16, 3]])
        model = estimator.model()
        # Discretization keeps the mean close to the sample mean of 13.
        assert abs(model.marginals[0].mean() - 13.0) < 1.0

    def test_degenerate_window_still_fits(self, tiny_game):
        # Identical observations give std 0; the fit floors it at 0.5.
        estimator = RollingGaussianEstimator(
            tiny_game, min_periods=3
        )
        _feed(estimator, [[5, 2]] * 3)
        model = estimator.model()
        assert model.marginals[0].min_count <= 5
        assert model.marginals[0].max_count >= 5

    def test_rejects_full_coverage(self, tiny_game):
        with pytest.raises(ValueError, match="coverage"):
            RollingGaussianEstimator(tiny_game, coverage=1.0)
