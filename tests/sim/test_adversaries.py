"""Adversary models: rationality spectrum and commitment."""

import numpy as np
import pytest

from repro.core.objective import REFRAIN
from repro.core.policy import AuditPolicy, Ordering
from repro.sim import (
    BestResponseAdversary,
    QuantalAdversary,
    StaticAdversary,
)
from tests.conftest import make_tiny_game


def _evaluation(game, thresholds, scenarios=None):
    scenarios = scenarios or game.scenario_set()
    policy = AuditPolicy.pure(Ordering((0, 1)), thresholds)
    return game.evaluate(policy, scenarios)


class TestBestResponse:
    def test_matches_evaluation_responses(self, tiny_game):
        evaluation = _evaluation(tiny_game, [3.0, 2.0])
        adversary = BestResponseAdversary(tiny_game)
        rng = np.random.default_rng(0)
        victims = adversary.choose(0, evaluation, rng)
        expected = [r.victim for r in evaluation.responses]
        assert victims.tolist() == expected

    def test_adapts_when_the_policy_changes(self):
        game = make_tiny_game(budget=6.0, attackers_can_refrain=True)
        adversary = BestResponseAdversary(game)
        rng = np.random.default_rng(0)
        scenarios = game.scenario_set()
        lax = _evaluation(game, [0.0, 0.0], scenarios)
        strict = _evaluation(game, [6.0, 6.0], scenarios)
        choice_lax = adversary.choose(0, lax, rng)
        choice_strict = adversary.choose(1, strict, rng)
        assert choice_lax.tolist() != choice_strict.tolist()


class TestStatic:
    def test_commits_to_period_zero_choice(self):
        game = make_tiny_game(budget=6.0, attackers_can_refrain=True)
        adversary = StaticAdversary(game)
        rng = np.random.default_rng(0)
        scenarios = game.scenario_set()
        lax = _evaluation(game, [0.0, 0.0], scenarios)
        strict = _evaluation(game, [6.0, 6.0], scenarios)
        first = adversary.choose(0, lax, rng)
        later = adversary.choose(1, strict, rng)
        assert later.tolist() == first.tolist()


class TestQuantal:
    def test_zero_rationality_attacks_roughly_uniformly(self, tiny_game):
        evaluation = _evaluation(tiny_game, [3.0, 2.0])
        adversary = QuantalAdversary(tiny_game, rationality=0.0)
        rng = np.random.default_rng(0)
        draws = np.stack(
            [adversary.choose(p, evaluation, rng) for p in range(300)]
        )
        # Refraining is off in the tiny game, so every victim (and no
        # REFRAIN) should appear for adversary 0.
        assert set(np.unique(draws)) == {0, 1, 2}

    def test_high_rationality_recovers_best_response(self, tiny_game):
        evaluation = _evaluation(tiny_game, [3.0, 2.0])
        adversary = QuantalAdversary(tiny_game, rationality=1e6)
        rng = np.random.default_rng(0)
        victims = adversary.choose(0, evaluation, rng)
        expected = [r.victim for r in evaluation.responses]
        assert victims.tolist() == expected

    def test_refrain_possible_when_allowed(self):
        game = make_tiny_game(budget=6.0, attackers_can_refrain=True)
        # Exhaustive thresholds make attacking unattractive.
        evaluation = _evaluation(game, [6.0, 6.0])
        adversary = QuantalAdversary(game, rationality=5.0)
        rng = np.random.default_rng(0)
        draws = np.concatenate(
            [adversary.choose(p, evaluation, rng) for p in range(100)]
        )
        assert (draws == REFRAIN).any()

    def test_rejects_negative_rationality(self, tiny_game):
        with pytest.raises(ValueError, match="rationality"):
            QuantalAdversary(tiny_game, rationality=-1.0)

    def test_rejects_infinite_rationality(self, tiny_game):
        # inf would NaN the softmax; best-response covers that limit.
        with pytest.raises(ValueError, match="finite"):
            QuantalAdversary(tiny_game, rationality=float("inf"))
