"""The period loop: determinism, warm-start equivalence, drift, budgets."""

import numpy as np
import pytest

from repro.sim import AuditSimulator, SimConfig, simulate
from tests.conftest import make_tiny_game

#: Coarse but real per-period solver config (keeps the loop fast).
FAST = {"step_size": 0.5}


@pytest.fixture(scope="module")
def stationary():
    """One 5-period stationary trajectory on the tiny game."""
    return simulate(
        make_tiny_game(budget=3.0),
        n_periods=5,
        solver_options=FAST,
    )


class TestDeterminism:
    def test_same_seed_reproduces_bit_for_bit(self, stationary):
        replay = simulate(
            make_tiny_game(budget=3.0),
            n_periods=5,
            solver_options=FAST,
        )
        assert replay.records == stationary.records

    def test_rerun_on_same_simulator_reproduces(self):
        simulator = AuditSimulator(
            make_tiny_game(budget=3.0),
            n_periods=4,
            solver_options=FAST,
            estimator="rolling-empirical",
            estimator_options={"min_periods": 2},
        )
        with simulator:
            first = simulator.run()
            second = simulator.run()
        assert first.records == second.records

    def test_different_seed_diverges(self, stationary):
        other = simulate(
            make_tiny_game(budget=3.0),
            n_periods=5,
            seed=99,
            solver_options=FAST,
        )
        assert other.records != stationary.records

    def test_record_shape(self, stationary):
        assert stationary.n_periods == 5
        for period, record in enumerate(stationary.records):
            assert record.period == period
            assert len(record.realized_counts) == 2
            assert len(record.thresholds) == 2
            assert sorted(record.ordering) == [0, 1]
            assert len(record.attacks) == 2
            assert record.budget == 3.0
            assert 0.0 <= record.spent <= record.budget + 1e-9


class TestWarmStartEquivalence:
    def test_warm_objectives_match_cold_per_period(self):
        game = make_tiny_game(budget=3.0)
        warm = simulate(
            game, n_periods=5, warm_start=True, solver_options=FAST
        )
        cold = simulate(
            game, n_periods=5, warm_start=False, solver_options=FAST
        )
        assert warm.objectives() == cold.objectives()
        assert warm.records == cold.records
        # Stationary + fixed estimator: every later period replays the
        # period-0 solve from the memo.
        assert warm.n_memoized == 4
        assert cold.n_memoized == 0

    def test_warm_equivalence_with_online_refits(self):
        game = make_tiny_game(budget=3.0)
        kwargs = dict(
            n_periods=6,
            solver_options=FAST,
            estimator="rolling-empirical",
            estimator_options={"min_periods": 2, "refit_every": 2},
        )
        warm = simulate(game, warm_start=True, **kwargs)
        cold = simulate(game, warm_start=False, **kwargs)
        assert warm.objectives() == cold.objectives()
        assert warm.records == cold.records
        assert warm.n_refits > 0

    def test_warm_equivalence_under_carryover(self):
        game = make_tiny_game(budget=3.0)
        kwargs = dict(
            n_periods=5, solver_options=FAST, budget_carryover=True
        )
        warm = simulate(game, warm_start=True, **kwargs)
        cold = simulate(game, warm_start=False, **kwargs)
        assert warm.records == cold.records


class TestDriftResponse:
    def test_rolling_estimator_tracks_the_drift(self):
        game = make_tiny_game(budget=3.0)
        kwargs = dict(
            n_periods=6,
            solver_options=FAST,
            source="drift",
            source_options={"drift": 0.8},
        )
        adaptive = simulate(
            game,
            estimator="rolling-empirical",
            estimator_options={"min_periods": 2, "window": 3},
            **kwargs,
        )
        oblivious = simulate(game, estimator="fixed", **kwargs)

        # The stream visibly grows...
        first = sum(adaptive.records[0].realized_counts)
        last = sum(adaptive.records[-1].realized_counts)
        assert last > first
        # ...the rolling estimator refits along the way...
        assert adaptive.n_refits >= 3
        assert oblivious.n_refits == 0
        # ...and the re-learned game changes the defender's solution,
        # while the oblivious defender keeps pricing the stale model.
        assert len(set(adaptive.objectives())) > 1
        assert len(set(oblivious.objectives())) == 1

    def test_refit_periods_flagged(self):
        trajectory = simulate(
            make_tiny_game(budget=3.0),
            n_periods=4,
            solver_options=FAST,
            estimator="rolling-empirical",
            estimator_options={"min_periods": 3},
        )
        assert [r.refit for r in trajectory.records] == [
            False, False, True, True,
        ]


class TestBudgetCarryover:
    def test_leftover_rolls_into_next_period(self):
        game = make_tiny_game(budget=3.0)
        trajectory = simulate(
            game,
            n_periods=4,
            solver_options=FAST,
            budget_carryover=True,
        )
        for prev, nxt in zip(
            trajectory.records, trajectory.records[1:], strict=False
        ):
            assert np.isclose(nxt.budget, 3.0 + prev.leftover)

    def test_cap_bounds_the_carryover(self):
        game = make_tiny_game(budget=3.0)
        trajectory = simulate(
            game,
            n_periods=4,
            solver_options=FAST,
            budget_carryover=True,
            carryover_cap=0.5,
        )
        for record in trajectory.records:
            assert record.budget <= 3.5 + 1e-9

    def test_disabled_by_default(self, stationary):
        assert all(r.budget == 3.0 for r in stationary.records)


class TestEngineCache:
    def test_eviction_is_lru_not_fifo(self):
        game = make_tiny_game(budget=3.0)
        with AuditSimulator(game, solver_options=FAST) as simulator:
            model = game.counts
            hot = simulator._engine_for(model, 3.0)
            # Cycle through more budgets than the cache holds, touching
            # the hot engine between insertions.
            for extra in (4.0, 5.0, 6.0, 7.0, 8.0):
                simulator._engine_for(model, extra)
                assert simulator._engine_for(model, 3.0) is hot


class TestSimConfig:
    def test_from_pairs_coerces_fields(self):
        config = SimConfig.from_pairs(
            {
                "n_periods": "7",
                "warm_start": "false",
                "carryover_cap": "none",
                "estimator": "rolling-empirical",
            }
        )
        assert config.n_periods == 7
        assert config.warm_start is False
        assert config.carryover_cap is None
        assert config.estimator == "rolling-empirical"

    def test_from_pairs_routes_dotted_plugin_options(self):
        config = SimConfig.from_pairs(
            {
                "source": "drift",
                "source.drift": "0.25",
                "estimator.window": "5",
                "adversary.rationality": "2.0",
                "solver.step_size": "0.4",
            }
        )
        assert config.source_options == {"drift": "0.25"}
        assert config.estimator_options == {"window": "5"}
        assert config.adversary_options == {"rationality": "2.0"}
        assert config.solver_options == {"step_size": "0.4"}

    def test_from_pairs_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="no option"):
            SimConfig.from_pairs({"periods": "7"})

    def test_from_pairs_rejects_flat_options_fields(self):
        # A raw string can't populate an options mapping; the dotted
        # form is required.
        with pytest.raises(ValueError, match="dotted"):
            SimConfig.from_pairs({"source_options": "drift=0.2"})

    def test_from_pairs_rejects_unknown_scope(self):
        with pytest.raises(ValueError, match="plugin scope"):
            SimConfig.from_pairs({"world.drift": "1"})

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="n_periods"):
            SimConfig(n_periods=0)
        with pytest.raises(ValueError, match="carryover_cap"):
            SimConfig(carryover_cap=-1.0)

    def test_bad_plugin_names_and_options_fail_at_construction(self):
        # Configuration mistakes must surface before the first period.
        game = make_tiny_game(budget=3.0)
        with pytest.raises(KeyError, match="estimator"):
            AuditSimulator(game, estimator="psychic")
        with pytest.raises(TypeError, match="quantal"):
            AuditSimulator(
                game,
                adversary="quantal",
                adversary_options={"bogus_knob": 1},
            )
        with pytest.raises(ValueError, match="rationality"):
            AuditSimulator(
                game,
                adversary="quantal",
                adversary_options={"rationality": "-2"},
            )
        with pytest.raises(KeyError, match="solver"):
            AuditSimulator(game, solver="gradient-descent")
        with pytest.raises(ValueError, match="bogus"):
            AuditSimulator(game, solver_options={"bogus": "1"})

    def test_string_plugin_options_coerced_at_run_time(self):
        # The CLI hands plugins string options; the simulator coerces
        # them against the plugin constructor annotations.
        trajectory = simulate(
            make_tiny_game(budget=3.0),
            n_periods=3,
            solver_options=FAST,
            source="drift",
            source_options={"drift": "0.5", "std_scale": "1.0"},
            estimator="rolling-empirical",
            estimator_options={"min_periods": "2", "window": "3"},
            adversary="quantal",
            adversary_options={"rationality": "1.5"},
        )
        assert trajectory.n_periods == 3


class TestAdversaryAccounting:
    def test_quantal_attacks_are_recorded(self):
        game = make_tiny_game(budget=3.0, attackers_can_refrain=True)
        trajectory = simulate(
            game,
            n_periods=4,
            solver_options=FAST,
            adversary="quantal",
            adversary_options={"rationality": 0.5},
        )
        total = sum(len(r.attacks) for r in trajectory.records)
        assert total == 4 * game.n_adversaries
        for record in trajectory.records:
            for attack in record.attacks:
                if attack.refrained:
                    assert attack.utility == 0.0
                    assert not attack.detected
        assert 0.0 <= trajectory.detection_rate <= 1.0
        assert 0.0 <= trajectory.deterrence_rate <= 1.0

    def test_realized_loss_weights_priors(self, stationary):
        for record in stationary.records:
            expected = sum(a.utility for a in record.attacks)
            assert np.isclose(record.realized_loss, expected)
