"""Shared fixtures: canonical games and scenario sets.

Expensive objects (the Syn A exact scenario set, the EMR world) are
session-scoped; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AlertType,
    AlertTypeSet,
    AttackTypeMap,
    AuditGame,
    PayoffModel,
)
from repro.datasets import syn_a
from repro.distributions import (
    ConstantCount,
    DiscretizedGaussian,
    JointCountModel,
)


@pytest.fixture(scope="session")
def syn_a_game() -> AuditGame:
    """The paper's Syn A instance at budget 10."""
    return syn_a(budget=10)


@pytest.fixture(scope="session")
def syn_a_scenarios(syn_a_game):
    """Exact joint scenario set for Syn A (4851 outcomes)."""
    return syn_a_game.scenario_set()


def make_tiny_game(
    budget: float = 3.0,
    attackers_can_refrain: bool = False,
    counts: JointCountModel | None = None,
) -> AuditGame:
    """A 2-type, 2-adversary, 3-victim game small enough to verify by hand.

    Type matrix::

        e1: [type-0, type-1, benign]
        e2: [type-1, type-0, type-0]
    """
    alert_types = AlertTypeSet(
        (
            AlertType("fast", audit_cost=1.0),
            AlertType("slow", audit_cost=2.0),
        )
    )
    if counts is None:
        counts = JointCountModel(
            [
                DiscretizedGaussian(mean=3.0, std=1.0),
                DiscretizedGaussian(mean=2.0, std=1.0),
            ]
        )
    type_matrix = np.array([[0, 1, -1], [1, 0, 0]])
    attack_map = AttackTypeMap.from_type_matrix(type_matrix, n_types=2)
    benefit = np.where(
        type_matrix == 0, 4.0, np.where(type_matrix == 1, 6.0, 0.0)
    )
    payoffs = PayoffModel.create(
        n_adversaries=2,
        n_victims=3,
        benefit=benefit,
        penalty=5.0,
        attack_cost=0.5,
        attack_prior=1.0,
        attackers_can_refrain=attackers_can_refrain,
    )
    return AuditGame(
        alert_types=alert_types,
        counts=counts,
        attack_map=attack_map,
        payoffs=payoffs,
        budget=budget,
    )


@pytest.fixture()
def tiny_game() -> AuditGame:
    """Fresh tiny game (mutable-budget experiments copy it anyway)."""
    return make_tiny_game()


@pytest.fixture()
def tiny_scenarios(tiny_game):
    return tiny_game.scenario_set()


@pytest.fixture()
def deterministic_game() -> AuditGame:
    """Tiny game with constant counts Z = (2, 1) for exact hand checks."""
    counts = JointCountModel([ConstantCount(2), ConstantCount(1)])
    return make_tiny_game(budget=3.0, counts=counts)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
